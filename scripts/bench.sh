#!/usr/bin/env bash
# bench.sh — run the repository micro/figure benchmarks and write a
# machine-readable JSON snapshot so successive PRs can track the perf
# trajectory.
#
# Usage:
#   scripts/bench.sh                  # all benchmarks -> BENCH.json
#   BENCH_OUT=BENCH_PR1.json scripts/bench.sh
#   BENCH_FILTER='Statevector|KAK' BENCH_TIME=500ms scripts/bench.sh
#   BENCH_SKIP_CHECK=1 scripts/bench.sh   # skip the vet/race preflight
#
# Output schema:
#   { "goos": ..., "goarch": ..., "cpu": ..., "gomaxprocs": N, "cpus": N,
#     "registry_families": N,
#     "benchmarks": [ { "name": ..., "iterations": N, "ns_per_op": ...,
#                       "b_per_op": ..., "allocs_per_op": ...,
#                       "cache_hits_per_op": ..., "cache_misses_per_op": ...,
#                       "swaps_per_op": ...,
#                       "layout_share": ..., "route_share": ...,
#                       "translate_share": ...,
#                       "disk_retries_per_op": ..., "degraded": ... }, ... ],
#     "scaling": [ { "gomaxprocs": N, "wall_ns": ... }, ... ] }
#
# cache_hits_per_op / cache_misses_per_op / swaps_per_op are emitted by the
# warm-cache and profile-guided benchmarks (b.ReportMetric) and stay null
# elsewhere. layout_share / route_share / translate_share are each pass's
# fraction of transpile-pipeline wall-clock (BenchmarkTranspilePassShares,
# fed by Transpiled.Timings), also null elsewhere.
# disk_retries_per_op / degraded come from the fault-injected disk-tier
# benchmark (BenchmarkCacheDiskFaultRetry): retries absorbed per op, and
# whether the error budget ever quarantined the disk tier (0/1).
# est_fidelity / noisy_eval_ns_per_op come from the noise-aware evaluation
# benchmark (BenchmarkNoisyEvaluate): the deterministic Monte-Carlo fidelity
# estimate (so snapshots catch silent model drift) and the per-evaluation
# wall-clock under a schema-stable name; null elsewhere.
# daemon_warm_eval_us / daemon_dedup_per_op come from the evaluation-service
# benchmark (BenchmarkDaemonWarmEvaluate): end-to-end warm /evaluate latency
# in microseconds (HTTP round trip + memory-tier hit, no routing) and the
# fraction of a 32-way cold batch served by dedup-or-hit joins (~0.97 means
# the batch cost one evaluation); null elsewhere.
# layers_per_circuit / batch_width_avg / fused_layer_share come from the
# fused arm of BenchmarkStatevectorFusion (sim.Program.Stats): fkLayer
# steps per compiled bench circuit, mean members per layer, and the
# fraction of kernel applications executed inside layers — the shape of
# the layer-batching scheduler, recorded so snapshots catch drift; null
# elsewhere.
#
# The scaling section records wall-clock of one quick `qcbench -fig 12`
# sweep at GOMAXPROCS 1/2/4 (the ROADMAP multi-core scaling demo); on a
# single-core runner the curve is flat — "cpus" says how to read it. Set
# BENCH_SKIP_SCALING=1 to skip it.
#
# "registry_families" records the size of the registry-built architecture
# grid (one line per family in `topostat -families`), so snapshots show
# when the declarative design space grows.
#
# The deltas section makes the perf trajectory machine-readable per PR: for
# every benchmark also present in the newest prior BENCH_*.json (by mtime,
# excluding the file being written), it records
#   { "name", "ns_ratio": prior_ns/new_ns, "allocs_ratio": prior/new }
# so ratios > 1 are improvements. "deltas_vs" names the baseline file
# (null, with an empty list, when this is the first snapshot).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH.json}"
FILTER="${BENCH_FILTER:-.}"
TIME="${BENCH_TIME:-1s}"
RAW="$(mktemp)"
SCALING="$(mktemp)"
QCBENCH="$(mktemp)"
trap 'rm -f "$RAW" "$SCALING" "$QCBENCH"' EXIT
CPUS="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
export GOMAXPROCS_REPORT="${GOMAXPROCS:-$CPUS}"
export CPUS_REPORT="$CPUS"

if [[ "${BENCH_SKIP_CHECK:-0}" != "1" ]]; then
    scripts/check.sh
fi

echo "bench: sizing the registry-built architecture grid (topostat -families)"
FAMILIES="$(go run ./cmd/topostat -families | wc -l | tr -d '[:space:]')"
export FAMILIES_REPORT="$FAMILIES"
echo "  registry_families=$FAMILIES"

if [[ "${BENCH_SKIP_SCALING:-0}" != "1" ]]; then
    echo "bench: sweep scaling curve (quick -fig 12 at GOMAXPROCS 1/2/4; $CPUS core(s) available)"
    go build -o "$QCBENCH" ./cmd/qcbench
    for p in 1 2 4; do
        start="$(date +%s%N)"
        GOMAXPROCS=$p "$QCBENCH" -fig 12 >/dev/null
        end="$(date +%s%N)"
        echo "$p $((end - start))" >> "$SCALING"
        echo "  gomaxprocs=$p wall=$(( (end - start) / 1000000 ))ms"
    done
fi

go test -bench="$FILTER" -benchmem -benchtime="$TIME" -count=1 -run='^$' . | tee "$RAW"

# Newest prior snapshot (for the deltas section); empty when none exists.
PRIOR="$(ls -t BENCH_*.json 2>/dev/null | grep -Fxv "$OUT" | head -1 || true)"

awk -v out="$OUT" -v scalingfile="$SCALING" -v prior="$PRIOR" '
function jsonnum(line, key,   s) {
    # Extract a numeric field from a machine-written benchmark line;
    # returns "" when absent or null.
    if (match(line, "\"" key "\": [0-9.eE+-]+") == 0) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/.*: /, "", s)
    return s
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    # Benchmark lines: Name[-P] iters ns/op [B/op] [allocs/op] [custom metrics]
    name = $1; iters = $2; ns = $3
    b = "null"; allocs = "null"; chits = "null"; cmisses = "null"; swaps = "null"
    lshare = "null"; rshare = "null"; tshare = "null"
    dretries = "null"; degraded = "null"
    estfid = "null"; noisyns = "null"
    layers = "null"; bwidth = "null"; lshareop = "null"
    dwarm = "null"; ddedup = "null"
    for (i = 3; i <= NF; i++) {
        if ($(i) == "ns/op")           ns = $(i - 1)
        if ($(i) == "B/op")            b = $(i - 1)
        if ($(i) == "allocs/op")       allocs = $(i - 1)
        if ($(i) == "cache_hits/op")   chits = $(i - 1)
        if ($(i) == "cache_misses/op") cmisses = $(i - 1)
        if ($(i) == "swaps")           swaps = $(i - 1)
        if ($(i) == "layout_share")    lshare = $(i - 1)
        if ($(i) == "route_share")     rshare = $(i - 1)
        if ($(i) == "translate_share") tshare = $(i - 1)
        if ($(i) == "disk_retries/op") dretries = $(i - 1)
        if ($(i) == "degraded")        degraded = $(i - 1)
        if ($(i) == "est_fidelity")    estfid = $(i - 1)
        if ($(i) == "noisy_eval_ns/op") noisyns = $(i - 1)
        if ($(i) == "layers_per_circuit") layers = $(i - 1)
        if ($(i) == "batch_width_avg")    bwidth = $(i - 1)
        if ($(i) == "fused_layer_share")  lshareop = $(i - 1)
        if ($(i) == "daemon_warm_eval_us") dwarm = $(i - 1)
        if ($(i) == "daemon_dedup_per_op") ddedup = $(i - 1)
    }
    n++
    lines[n] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s, \"cache_hits_per_op\": %s, \"cache_misses_per_op\": %s, \"swaps_per_op\": %s, \"layout_share\": %s, \"route_share\": %s, \"translate_share\": %s, \"disk_retries_per_op\": %s, \"degraded\": %s, \"est_fidelity\": %s, \"noisy_eval_ns_per_op\": %s, \"layers_per_circuit\": %s, \"batch_width_avg\": %s, \"fused_layer_share\": %s, \"daemon_warm_eval_us\": %s, \"daemon_dedup_per_op\": %s}",
                       name, iters, ns, b, allocs, chits, cmisses, swaps, lshare, rshare, tshare, dretries, degraded, estfid, noisyns, layers, bwidth, lshareop, dwarm, ddedup)
    names[n] = name; nsval[n] = ns; allocval[n] = allocs
}
END {
    printf "{\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"cpus\": %s,\n  \"registry_families\": %s,\n  \"benchmarks\": [\n", \
           goos, goarch, cpu, ENVIRON["GOMAXPROCS_REPORT"], ENVIRON["CPUS_REPORT"], ENVIRON["FAMILIES_REPORT"] > out
    for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "") >> out
    print "  ]," >> out
    print "  \"scaling\": [" >> out
    m = 0
    while ((getline line < scalingfile) > 0) {
        split(line, f, " ")
        m++
        srows[m] = sprintf("    {\"gomaxprocs\": %s, \"wall_ns\": %s}", f[1], f[2])
    }
    for (i = 1; i <= m; i++) printf "%s%s\n", srows[i], (i < m ? "," : "") >> out
    print "  ]," >> out
    # Deltas against the newest prior snapshot: ratios prior/new, so > 1
    # is an improvement; benchmarks missing from either side are skipped.
    if (prior != "") {
        while ((getline line < prior) > 0) {
            if (match(line, /"name": "[^"]+"/) == 0) continue
            pname = substr(line, RSTART + 9, RLENGTH - 10)
            # Only benchmark rows carry ns_per_op; the prior file own
            # deltas rows must not clobber them.
            pv = jsonnum(line, "ns_per_op")
            if (pv == "") continue
            pns[pname] = pv
            pallocs[pname] = jsonnum(line, "allocs_per_op")
        }
        printf "  \"deltas_vs\": \"%s\",\n", prior >> out
    } else {
        print "  \"deltas_vs\": null," >> out
    }
    print "  \"deltas\": [" >> out
    dn = 0
    for (i = 1; i <= n; i++) {
        if (!(names[i] in pns) || pns[names[i]] == "" || nsval[i] + 0 == 0) continue
        nsr = pns[names[i]] / nsval[i]
        ar = "null"
        if (allocval[i] != "null" && pallocs[names[i]] != "" && allocval[i] + 0 > 0)
            ar = sprintf("%.4g", pallocs[names[i]] / allocval[i])
        dn++
        drows[dn] = sprintf("    {\"name\": \"%s\", \"ns_ratio\": %.4g, \"allocs_ratio\": %s}", names[i], nsr, ar)
    }
    for (i = 1; i <= dn; i++) printf "%s%s\n", drows[i], (i < dn ? "," : "") >> out
    print "  ]\n}" >> out
}
' "$RAW"

echo "wrote $OUT"
