#!/usr/bin/env bash
# check.sh — static and concurrency preflight for the repository:
#   * go vet over every package
#   * race-detector runs of the packages with real concurrency surface
#     (the content-addressed cache and the parallel sweep engine), pinned
#     to GOMAXPROCS=4 so races reproduce even on single-core runners.
#
# Run directly, or via scripts/bench.sh which uses it as its preflight.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "check: go vet ./..."
go vet ./...

echo "check: race-testing cache + sweep engine (GOMAXPROCS=4)"
GOMAXPROCS=4 go test -race -count=1 ./internal/cache/... ./internal/experiments/... ./internal/par/...

echo "check: ok"
