#!/usr/bin/env bash
# check.sh — static and concurrency preflight for the repository:
#   * gofmt -l over every Go file: unformatted code is rejected repo-wide
#   * go vet over every package
#   * doc-comment name check: a Go doc comment must lead with the name of
#     the symbol it documents; stale names (e.g. a comment saying
#     FormatFig15 above a method renamed to Format) are rejected. Only
#     leading words that look like code identifiers (camel-case with an
#     internal capital) are compared, so prose-first comments never trip.
#   * no-sleep lint: tests of the concurrency packages (cache, par,
#     faultinject, experiments, daemon) must synchronize on channels,
#     contexts, or atomics — a time.Sleep there is a latent flake and is
#     rejected. (Library code may sleep; the retry backoff does.)
#   * registry-integrity arm: every registered architecture family must
#     parse and build its smoke spec into a connected graph, with no
#     duplicate family names or fingerprint-identical smoke topologies
#     (TestRegistryIntegrity in internal/arch).
#   * noise-equivalence arm: the Monte-Carlo trajectory estimator must
#     agree with the closed-form count model within sampling tolerance on
#     small circuits (TestNoiseEquivalence in internal/noise) — the count
#     model is the exact expectation of the sampled channels, so drift
#     means one of the two models broke.
#   * chaos arm: the fault-injection suite — panic isolation, injected
#     disk faults and corruption self-heal, cell timeouts, crash-resume
#     byte-identity — run under the race detector (-run 'Fault|Chaos|Resume').
#   * daemon smoke arm: build qcbenchd + qcbench, boot the daemon on an
#     ephemeral port, prove 32 concurrent identical /evaluate requests cost
#     exactly one evaluation (cold) and zero (warm) via the /metrics dedup
#     counters, prove a -server sweep's stdout is byte-identical to a local
#     run, then SIGTERM it and require a clean drain (exit 0).
#   * race-detector runs of the packages with real concurrency surface
#     (the content-addressed cache, the parallel sweep engine, the
#     transpile pass pipeline with its parallel router trials and
#     per-worker routing scratch, and the sim package including the
#     sharded fusion kernels — TestShardedKernelsByteIdentical forces the
#     parallel arms with 4 workers, and the noise package whose Monte-Carlo
#     trajectories fan out over the same pool — TestTrajectoryDeterminism
#     pins serial == parallel), pinned to GOMAXPROCS=4 so races reproduce
#     even on single-core runners.
#
# Run directly, or via scripts/bench.sh which uses it as its preflight.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "check: gofmt"
UNFORMATTED="$(find . -name '*.go' -not -path './.git/*' -print0 | xargs -0 gofmt -l)"
if [[ -n "$UNFORMATTED" ]]; then
    echo "$UNFORMATTED"
    echo "check: FAILED — run gofmt -w on the files above"
    exit 1
fi

echo "check: go vet ./..."
go vet ./...

echo "check: doc-comment names match declarations"
DOCCHECK="$(find . -name '*.go' -not -path './.git/*' | sort | xargs awk '
FNR == 1 { incomment = 0 }  # never leak comment state across files
/^\/\/ [A-Za-z_][A-Za-z0-9_]*/ {
    if (!incomment) {
        split($0, parts, " ")
        first = parts[2]; sub(/[:,.]$/, "", first)
        incomment = 1
        startline = FNR
    }
    next
}
/^\/\// { next }
/^func |^type |^const |^var / {
    if (incomment) {
        name = ""
        if ($1 == "func" && $2 ~ /^\(/) {
            # The receiver may be one token ("(OSFS)") or several
            # ("(s *Store[V])"); the method name follows its closing paren.
            nm = ""
            for (i = 2; i <= NF; i++) { if ($(i) ~ /\)$/) { nm = $(i+1); break } }
            sub(/\(.*/, "", nm); name = nm
        } else if ($1 == "func" || $1 == "type") {
            nm = $2; sub(/[\(\[].*/, "", nm); name = nm
        } else {
            nm = $2; sub(/[,=].*/, "", nm); name = nm
        }
        # Grouped declarations (const ( / var ( / type () have no single
        # name on the declaration line; skip rather than compare against "(".
        if (name ~ /^\(/) name = ""
        if (name != "" && first != name && first ~ /^[A-Za-z][a-z0-9]*[A-Z]/)
            printf "%s:%d: doc comment leads with \"%s\" but declares \"%s\"\n", FILENAME, startline, first, name
    }
    incomment = 0
    next
}
{ incomment = 0 }
')"
if [[ -n "$DOCCHECK" ]]; then
    echo "$DOCCHECK"
    echo "check: FAILED — stale doc-comment names"
    exit 1
fi

echo "check: no time.Sleep in concurrency-package tests"
SLEEPS="$(grep -n 'time\.Sleep' \
    internal/cache/*_test.go internal/par/*_test.go \
    internal/faultinject/*_test.go internal/experiments/*_test.go \
    internal/daemon/*_test.go \
    2>/dev/null || true)"
if [[ -n "$SLEEPS" ]]; then
    echo "$SLEEPS"
    echo "check: FAILED — sleep-based test synchronization is a latent flake; use channels, contexts, or atomics"
    exit 1
fi

echo "check: architecture registry integrity (smoke builds, unique names + fingerprints)"
go test -count=1 -run 'TestRegistryIntegrity' ./internal/arch

echo "check: noise-model equivalence (Monte-Carlo vs closed-form count model)"
go test -count=1 -run 'TestNoiseEquivalence' ./internal/noise

echo "check: chaos suite under the race detector (-run 'Fault|Chaos|Resume')"
GOMAXPROCS=4 go test -race -count=1 -run 'Fault|Chaos|Resume' ./internal/...

echo "check: layered statevector kernels under the race detector (forced-shard + forced-4-worker arms)"
GOMAXPROCS=4 go test -race -count=1 \
    -run 'TestLayered|TestBuildLayers|TestLayerKernelAllocs|TestShardedKernelsByteIdentical|TestScheduleBackwardAbsorption' \
    ./internal/sim

echo "check: race-testing cache + sweep engine + transpile pipeline + sim kernels + noise estimators (GOMAXPROCS=4)"
GOMAXPROCS=4 go test -race -count=1 \
    ./internal/cache/... ./internal/experiments/... ./internal/faultinject/... \
    ./internal/par/... ./internal/transpile/... ./internal/sim/... \
    ./internal/noise/... ./internal/daemon/...

echo "check: qcbenchd smoke (ephemeral port, 32-way dedup probe, byte-identical remote sweep, SIGTERM drain)"
SMOKEDIR="$(mktemp -d)"
DPID=""
cleanup_smoke() {
    [[ -n "$DPID" ]] && kill "$DPID" 2>/dev/null || true
    rm -rf "$SMOKEDIR"
}
trap cleanup_smoke EXIT
go build -o "$SMOKEDIR/qcbenchd" ./cmd/qcbenchd
go build -o "$SMOKEDIR/qcbench" ./cmd/qcbench
"$SMOKEDIR/qcbenchd" -addr 127.0.0.1:0 -cachedir "$SMOKEDIR/cache" \
    >"$SMOKEDIR/daemon.out" 2>"$SMOKEDIR/daemon.err" &
DPID=$!
BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's/^qcbenchd listening on \(.*\)$/\1/p' "$SMOKEDIR/daemon.out")"
    [[ -n "$BASE" ]] && break
    kill -0 "$DPID" 2>/dev/null || break
    sleep 0.1
done
if [[ -z "$BASE" ]]; then
    echo "check: FAILED — qcbenchd did not report its listen address"
    cat "$SMOKEDIR/daemon.err"
    exit 1
fi
COLD="$("$SMOKEDIR/qcbenchd" -probe 32 -target "$BASE")"
echo "  $COLD"
if [[ "$COLD" != *"fills=1"* ]]; then
    echo "check: FAILED — cold probe should cost exactly one evaluation: $COLD"
    exit 1
fi
WARM="$("$SMOKEDIR/qcbenchd" -probe 32 -target "$BASE")"
echo "  $WARM"
if [[ "$WARM" != *"fills=0"* ]]; then
    echo "check: FAILED — warm probe should cost zero evaluations: $WARM"
    exit 1
fi
SWEEP_ARGS=(-fig 11 -machines "grid:rows=4,cols=4,name=Square-Lattice" -trials 1)
"$SMOKEDIR/qcbench" "${SWEEP_ARGS[@]}" >"$SMOKEDIR/local.txt"
"$SMOKEDIR/qcbench" -server "$BASE" "${SWEEP_ARGS[@]}" >"$SMOKEDIR/remote.txt"
if ! cmp -s "$SMOKEDIR/local.txt" "$SMOKEDIR/remote.txt"; then
    echo "check: FAILED — -server sweep output diverged from the local run"
    diff "$SMOKEDIR/local.txt" "$SMOKEDIR/remote.txt" || true
    exit 1
fi
kill -TERM "$DPID"
if ! wait "$DPID"; then
    echo "check: FAILED — qcbenchd did not drain cleanly on SIGTERM"
    cat "$SMOKEDIR/daemon.err"
    exit 1
fi
DPID=""

echo "check: ok"
