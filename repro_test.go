package repro

import (
	"math/rand"
	"testing"
)

// TestFacadeQuickstart exercises the documented public-API flow end to end.
func TestFacadeQuickstart(t *testing.T) {
	c := GHZ(12)
	machine := Tree20SqrtISwap()
	met, err := machine.Evaluate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if met.Total2Q == 0 || met.PulseDuration <= 0 {
		t.Fatalf("degenerate metrics: %v", met)
	}
}

func TestFacadeTopologyCatalog(t *testing.T) {
	for _, g := range []*Graph{
		SquareLattice16(), HeavyHex20(), Hypercube84(), Tree84(), Corral12(),
	} {
		if !g.IsConnected() {
			t.Errorf("%s disconnected", g.Name)
		}
	}
	if len(Table1()) != 8 || len(Table2()) != 7 {
		t.Error("table row counts wrong")
	}
}

func TestFacadeWeylAndSynthesis(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := QuantumVolume(4, rng)
	for _, op := range c.Ops {
		if op.U == nil {
			continue
		}
		coord, err := WeylCoordinates(op.U)
		if err != nil {
			t.Fatal(err)
		}
		if k := BasisSqrtISwap.NumGates(coord); k < 2 || k > 3 {
			t.Errorf("Haar SU(4) needs %d √iSWAPs; expected 2 or 3", k)
		}
		syn, err := SynthesizeCX(op.U)
		if err != nil {
			t.Fatal(err)
		}
		if !syn.Unitary().EqualUpToPhase(op.U, 1e-6) {
			t.Fatal("public synthesis mismatch")
		}
	}
}

func TestFacadeSimulation(t *testing.T) {
	st, err := RunCircuit(GHZ(5))
	if err != nil {
		t.Fatal(err)
	}
	if p := st.Probability(0) + st.Probability(31); p < 0.999 {
		t.Errorf("GHZ weight on extremes = %g", p)
	}
}

func TestFacadeSNAILHardware(t *testing.T) {
	hw, err := TreeHardware()
	if err != nil {
		t.Fatal(err)
	}
	freqs, err := hw.AllocateFrequencies(4.5, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.VerifyFrequencies(freqs, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeQASMRoundTrip(t *testing.T) {
	c := QFT(5, true)
	src, err := ExportQASM(c, QASMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if back.CountTwoQubit() != c.CountTwoQubit() {
		t.Fatal("QASM round trip changed 2Q count")
	}
}

func TestFacadeNoiseAndPeephole(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := GHZ(6)
	f, err := MonteCarloFidelity(c, NoiseModel{GateError: 0.01}, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0.5 || f > 1 {
		t.Fatalf("implausible fidelity %g", f)
	}
	opt, err := Peephole(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CountTwoQubit() != c.CountTwoQubit() {
		t.Fatal("peephole changed GHZ gate count")
	}
}

func TestFacadeChevron(t *testing.T) {
	ch, err := ChevronMap(ExchangeModel{G: 1.5, T1: 100}, 3, 11, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Times) != 11 || len(ch.Detunings) != 7 {
		t.Fatal("chevron grid wrong")
	}
}

func TestFacadeArchRegistry(t *testing.T) {
	a, err := ParseArch("corral:posts=8,strides=1+1,basis=sqrtiswap,name=Corral11-sqrtISWAP")
	if err != nil {
		t.Fatal(err)
	}
	if b, err := ParseArch(a.String()); err != nil || !a.Equal(b) {
		t.Fatalf("spec round trip failed: %v %+v", err, b)
	}
	m, err := MachineFromArch(a)
	if err != nil {
		t.Fatal(err)
	}
	catalog := Corral11SqrtISwap()
	if m.Name != catalog.Name || m.Graph.Fingerprint() != catalog.Graph.Fingerprint() || m.Basis != catalog.Basis {
		t.Fatalf("spec-built machine %q diverges from catalog %q", m.Name, catalog.Name)
	}
	if len(ArchFamilies()) < 8 {
		t.Fatalf("expected the 8 built-in families, got %d", len(ArchFamilies()))
	}
	ms, err := MachinesFromSpecs("hypercube:dim=4,basis=sqrtiswap;tree:levels=2,basis=sqrtiswap")
	if err != nil || len(ms) != 2 {
		t.Fatalf("MachinesFromSpecs: %v (%d machines)", err, len(ms))
	}
	if DefaultGateTiming().Duration("siswap") != 0.5 {
		t.Fatal("default timing table lost the paper normalization")
	}
	if g := Tree(3, 2); g.N() != 12 {
		t.Fatalf("generic Tree(3,2) has %d qubits, want 12", g.N())
	}
	if g := TreeRR(3, 2); g.N() != 12 {
		t.Fatalf("generic TreeRR(3,2) has %d qubits, want 12", g.N())
	}
}
