// Command qcbench regenerates the paper's transpilation sweeps:
//
//	qcbench -fig 4    total/critical SWAPs, 84q standard topologies (Fig. 4)
//	qcbench -fig 11   total/critical SWAPs, 16q SNAIL topologies (Fig. 11)
//	qcbench -fig 12   total/critical SWAPs, 84q incl. Tree/Tree-RR (Fig. 12)
//	qcbench -fig 13   co-designed total 2Q + pulse duration, 16q (Fig. 13)
//	qcbench -fig 14   co-designed total 2Q + pulse duration, 84q (Fig. 14)
//	qcbench -headline the §1/§6 Heavy-Hex-vs-Hypercube summary ratios
//
// By default a reduced ("quick") configuration runs in seconds; -full uses
// the paper's sizes (16..80 qubits, 20 routing trials), which takes tens of
// minutes for the 84-qubit figures on one core.
//
// -cachedir DIR enables the content-addressed result cache with an on-disk
// JSON tier rooted at DIR (created if missing): every (machine, circuit,
// seed, trials, router) evaluation is stored under a hash of its inputs, so
// regenerating a figure — or another figure sharing cells — skips routing
// that already ran, in this process or any earlier one. Cached output is
// byte-identical to a cold run of the same build: keys are content hashes
// of the inputs plus a pipeline version tag, so entries need no manual
// invalidation, but a directory written by a build with different routing
// or translation behavior (and an unbumped tag — see core.evaluateKeyDomain)
// is only as fresh as that tag. Hit/miss counts print to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 4, 11, 12, 13, or 14")
	headline := flag.Bool("headline", false, "compute the Heavy-Hex vs Hypercube headline ratios")
	corral := flag.Bool("corralscaling", false, "run the §7 Corral scaling study")
	csv := flag.Bool("csv", false, "emit sweep results as CSV")
	full := flag.Bool("full", false, "use the paper's full sizes (slow)")
	parallelism := flag.Int("parallelism", 0,
		"sweep worker pool size (0 = all cores, 1 = serial; output is identical at any setting)")
	cachedir := flag.String("cachedir", "",
		"directory for the on-disk result cache (default off; warm entries make repeated runs skip identical routing)")
	flag.Parse()

	var store *cache.Store[core.Metrics]
	if *cachedir != "" {
		var err error
		store, err = core.NewMetricsCache(0, *cachedir)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			st := store.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits (%d mem, %d disk), %d misses, %d evaluations\n",
				st.Hits(), st.MemHits, st.DiskHits, st.Misses, st.Fills)
		}()
	}

	quick := !*full
	if *corral {
		posts := []int{6, 8, 10, 12, 16}
		rows, err := experiments.CorralScaling(posts, quick, *parallelism, store)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Corral scaling study (paper §7 future work): ring growth with")
		fmt.Println("the long fence at ~1/3 of the ring; QV at 80% machine fill.")
		fmt.Print(experiments.FormatCorralScaling(rows))
		return
	}
	if *headline {
		h, err := experiments.Headlines(quick, *parallelism, store)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("QuantumVolume average ratios, Heavy-Hex+CNOT / Hypercube+sqrtISWAP (sizes %v):\n", h.Sizes)
		fmt.Printf("  total SWAPs        %.2fx   (paper: 2.57x)\n", h.SwapRatio)
		fmt.Printf("  critical SWAPs     %.2fx   (paper: 5.63x)\n", h.CriticalSwapRatio)
		fmt.Printf("  total 2Q gates     %.2fx   (paper: 3.16x)\n", h.Total2QRatio)
		fmt.Printf("  pulse duration     %.2fx   (paper: 6.11x)\n", h.DurationRatio)
		return
	}
	var spec experiments.SweepSpec
	switch *fig {
	case 4:
		spec = experiments.Fig4Spec(quick)
	case 11:
		spec = experiments.Fig11Spec(quick)
	case 12:
		spec = experiments.Fig12Spec(quick)
	case 13:
		spec = experiments.Fig13Spec(quick)
	case 14:
		spec = experiments.Fig14Spec(quick)
	default:
		flag.Usage()
		os.Exit(2)
	}
	spec.Parallelism = *parallelism
	spec.Cache = store
	series, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		fmt.Print(experiments.SeriesCSV(series, spec.Kind))
		return
	}
	fmt.Printf("Figure %d (%s mode)\n", *fig, mode(quick))
	fmt.Print(experiments.FormatSeries(series, spec.Kind))
}

func mode(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}
