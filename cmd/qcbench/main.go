// Command qcbench regenerates the paper's transpilation sweeps:
//
//	qcbench -fig 4    total/critical SWAPs, 84q standard topologies (Fig. 4)
//	qcbench -fig 11   total/critical SWAPs, 16q SNAIL topologies (Fig. 11)
//	qcbench -fig 12   total/critical SWAPs, 84q incl. Tree/Tree-RR (Fig. 12)
//	qcbench -fig 13   co-designed total 2Q + pulse duration, 16q (Fig. 13)
//	qcbench -fig 14   co-designed total 2Q + pulse duration, 84q (Fig. 14)
//	qcbench -headline the §1/§6 Heavy-Hex-vs-Hypercube summary ratios
//
// By default a reduced ("quick") configuration runs in seconds; -full uses
// the paper's sizes (16..80 qubits, 20 routing trials), which takes tens of
// minutes for the 84-qubit figures on one core.
//
// -profile enables profile-guided routing: every evaluation first routes a
// pilot pass under uniform hop distances, measures per-edge SWAP pressure,
// then re-lays-out and re-routes under pressure-weighted distances that
// price congested links (corral fences, tree roots) above idle ones,
// keeping the cheaper of the two routings. Roughly 2× the routing time;
// never worse than the baseline on induced SWAPs. -iterations N repeats
// the profile→reweight→reroute loop up to N times (keeping a candidate
// only when strictly cheaper, stopping early at a fixed point), so more
// iterations never route worse.
//
// -trials overrides the stochastic router's per-layer trial count (0 =
// mode default: 5 quick, 20 full). Negative values for -trials,
// -parallelism, -iterations, or -posts are rejected with usage errors.
//
// -machines "spec;spec;..." replaces a -fig sweep's machine set with
// architectures built from declarative specs (family:key=value,... — see
// package arch and the README's architecture-registry section), keeping
// the figure's workloads, sizes, seed, and output format. Cell seeds
// derive from the sweep ID and machine names, so specs whose name=
// parameters match a figure's stock machines reproduce its output
// byte-for-byte.
//
// -cachedir DIR enables the content-addressed result cache with an on-disk
// JSON tier rooted at DIR (created if missing): every (machine, circuit,
// seed, trials, router, profile-mode) evaluation is stored under a hash of
// its inputs, so regenerating a figure — or another figure sharing cells —
// skips routing that already ran, in this process or any earlier one.
// Profile-guided and baseline evaluations are keyed separately and can
// share a directory without cross-contamination. Cached output is
// byte-identical to a cold run of the same build: keys are content hashes
// of the inputs plus a pipeline version tag, so entries need no manual
// invalidation, but a directory written by a build with different routing
// or translation behavior (and an unbumped tag — see core.evaluateKeyDomain)
// is only as fresh as that tag. Hit/miss counts print to stderr on every
// exit path, including failed sweeps.
//
// -noise "e2q=P,tdec=R,e2q-a-b=P" attaches a noise profile to every machine
// in a -fig sweep (machines whose -machines specs declare their own e2q=/
// tdec= keys keep them — a machine's profile wins over the sweep default)
// and reports each cell's estimated output-state fidelity in an extra
// [estFidelity] table block (or est_fidelity CSV column). -noise-model
// picks the estimator: count (closed-form, the default) or montecarlo
// (trajectory sampling, -noise-shots trajectories per cell). -noise-route
// re-routes against error-weighted edge costs instead of plain hop counts:
// pure prices edges by −ln(1−p) alone; blend multiplies the error weights
// into measured SWAP-pressure weights after a pilot pass. Noisy evaluations
// carry a tagged noise/v1 cache-key field, so a -cachedir shared with
// baseline runs stays uncontaminated and baseline entries still hit.
//
// Long unattended runs are bounded and interruptible: -cell-timeout D
// fails any single evaluation exceeding D (the sweep continues under
// -tolerant), -deadline D bounds the whole invocation, and Ctrl-C cancels
// cooperatively — in-flight cells stop at their next poll, partial results
// (under -tolerant) and cache stats still print. -tolerant completes a
// -fig sweep around failing cells instead of aborting on the first one,
// reporting the casualties on stderr. -resume FILE journals every
// completed cell to FILE (created if missing) and replays cells already
// journaled, so a killed sweep restarted with the same journal recomputes
// only what is missing and prints output byte-identical to an
// uninterrupted run. None of these knobs changes any number a completed
// run reports.
//
// Exactly one of -fig, -headline, -corralscaling must be chosen, and -csv,
// -tolerant, and -resume only apply to -fig sweeps; conflicting
// combinations are rejected with a usage error instead of being silently
// ignored.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/experiments"
)

func main() {
	cli.Exit("qcbench", run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a single exit point: every return path
// unwinds the defers, so the -cachedir stats line prints even when a sweep
// fails — log.Fatal's os.Exit used to skip it.
func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("qcbench", stderr)
	fig := fs.Int("fig", 0, "figure to regenerate: 4, 11, 12, 13, or 14")
	headline := fs.Bool("headline", false, "compute the Heavy-Hex vs Hypercube headline ratios")
	corral := fs.Bool("corralscaling", false, "run the §7 Corral scaling study")
	csv := fs.Bool("csv", false, "emit sweep results as CSV (-fig only)")
	full := fs.Bool("full", false, "use the paper's full sizes (slow)")
	profile := fs.Bool("profile", false,
		"profile-guided routing: pilot pass, per-edge SWAP pressure, pressure-weighted final pass (~2x routing time, never more SWAPs)")
	iterations := fs.Int("iterations", 1,
		"profile→reweight feedback iterations for -profile (each keeps the routing only when strictly cheaper; stops early at a fixed point)")
	trialsFlag := fs.Int("trials", 0,
		"stochastic-router trials per layer (0 = mode default: 5 quick, 20 full)")
	parallelism := fs.Int("parallelism", 0,
		"sweep worker pool size (0 = all cores, 1 = serial; output is identical at any setting)")
	cachedir := fs.String("cachedir", "",
		"directory for the on-disk result cache (default off; warm entries make repeated runs skip identical routing)")
	posts := fs.String("posts", "6,8,10,12,16",
		"comma-separated Corral ring sizes for -corralscaling (each ≥5 posts)")
	cellTimeout := fs.Duration("cell-timeout", 0,
		"per-evaluation wall-clock budget (0 = unbounded; an expired cell fails with deadline exceeded)")
	deadline := fs.Duration("deadline", 0,
		"whole-run wall-clock budget (0 = unbounded)")
	tolerant := fs.Bool("tolerant", false,
		"complete a -fig sweep around failing cells instead of aborting; failures print to stderr")
	resume := fs.String("resume", "",
		"journal file for crash-resumable -fig sweeps (created if missing; journaled cells replay instead of recomputing)")
	machines := fs.String("machines", "",
		"replace a -fig sweep's machine set with architecture specs, e.g. \"corral:posts=11,basis=sqrtiswap;hypercube:dim=5\" (specs separated by ';' or by ',' before a family name; see README)")
	server := fs.String("server", "",
		"qcbenchd base URL (e.g. http://127.0.0.1:8123): run the -fig sweep on the evaluation service instead of locally; output is byte-identical to a local run")
	noiseFlag := fs.String("noise", "",
		"noise profile for every machine in a -fig sweep, e.g. \"e2q=0.002,tdec=0.001,e2q-0-1=0.05\" (machines whose specs carry their own e2q=/tdec= keys keep them)")
	noiseModel := fs.String("noise-model", "",
		"fidelity estimator: count (closed-form) or montecarlo (trajectory sampling); default count when noise is configured")
	noiseRoute := fs.String("noise-route", "",
		"error-weighted routing: pure (edge costs from error rates alone) or blend (error weights × measured SWAP pressure)")
	noiseShots := fs.Int("noise-shots", 0,
		"Monte-Carlo trajectories per cell for -noise-model montecarlo (0 = default)")
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments %q (qcbench takes flags only)", fs.Args())
	}

	// Reject conflicting or silently-ignored combinations up front: the old
	// CLI let -headline win over an explicit -fig and dropped -csv under
	// -headline/-corralscaling without a word.
	var modes []string
	if *fig != 0 {
		modes = append(modes, "-fig")
	}
	if *headline {
		modes = append(modes, "-headline")
	}
	if *corral {
		modes = append(modes, "-corralscaling")
	}
	if len(modes) == 0 {
		fs.Usage()
		return cli.Usagef("choose one of -fig, -headline, -corralscaling")
	}
	if len(modes) > 1 {
		return cli.Usagef("%v are mutually exclusive; choose one", modes)
	}
	if *csv && *fig == 0 {
		return cli.Usagef("-csv only applies to -fig sweeps; it would be ignored under %s", modes[0])
	}
	postsSet, iterationsSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "posts":
			postsSet = true
		case "iterations":
			iterationsSet = true
		}
	})
	if postsSet && !*corral {
		return cli.Usagef("-posts only applies to -corralscaling; it would be ignored under %s", modes[0])
	}
	if iterationsSet && !*profile {
		return cli.Usagef("-iterations only applies with -profile; it would be ignored otherwise")
	}
	// Negative knob values used to be swallowed silently (a negative trial
	// or worker count reads as "use the default" deep inside the pipeline);
	// reject them here where the mistake is visible.
	if *trialsFlag < 0 {
		return cli.Usagef("-trials must be ≥ 0 (0 = mode default), got %d", *trialsFlag)
	}
	if *parallelism < 0 {
		return cli.Usagef("-parallelism must be ≥ 0 (0 = all cores), got %d", *parallelism)
	}
	if *iterations < 1 {
		return cli.Usagef("-iterations must be ≥ 1, got %d", *iterations)
	}
	if *cellTimeout < 0 {
		return cli.Usagef("-cell-timeout must be ≥ 0 (0 = unbounded), got %v", *cellTimeout)
	}
	if *deadline < 0 {
		return cli.Usagef("-deadline must be ≥ 0 (0 = unbounded), got %v", *deadline)
	}
	if *tolerant && *fig == 0 {
		return cli.Usagef("-tolerant only applies to -fig sweeps; it would be ignored under %s", modes[0])
	}
	if *resume != "" && *fig == 0 {
		return cli.Usagef("-resume only applies to -fig sweeps; it would be ignored under %s", modes[0])
	}
	if *machines != "" && *fig == 0 {
		return cli.Usagef("-machines only applies to -fig sweeps; it would be ignored under %s", modes[0])
	}
	noiseConfigured := *noiseFlag != "" || *noiseModel != "" || *noiseRoute != "" || *noiseShots != 0
	if noiseConfigured && *fig == 0 {
		return cli.Usagef("noise flags only apply to -fig sweeps; they would be ignored under %s", modes[0])
	}
	// -noise-model/-noise-route without -noise are legal only when -machines
	// can supply per-machine profiles via e2q=/tdec= spec keys; a missing
	// profile then fails per cell with a descriptive core error.
	if (*noiseModel != "" || *noiseRoute != "") && *noiseFlag == "" && *machines == "" {
		return cli.Usagef("-noise-model/-noise-route need a noise profile: set -noise, or -machines specs with e2q=/tdec= keys")
	}
	var noiseProfile *arch.NoiseProfile
	if *noiseFlag != "" {
		var err error
		if noiseProfile, err = arch.ParseNoise(*noiseFlag); err != nil {
			return cli.Usagef("bad -noise: %v", err)
		}
	}
	fidelity := core.FidelityOff
	if noiseConfigured {
		switch *noiseModel {
		case "", "count":
			fidelity = core.FidelityCount
		case "montecarlo":
			fidelity = core.FidelityMonteCarlo
		default:
			return cli.Usagef("unknown -noise-model %q: want count or montecarlo", *noiseModel)
		}
	}
	if *noiseShots < 0 {
		return cli.Usagef("-noise-shots must be ≥ 0 (0 = default), got %d", *noiseShots)
	}
	if *noiseShots > 0 && fidelity != core.FidelityMonteCarlo {
		return cli.Usagef("-noise-shots only applies to -noise-model montecarlo; it would be ignored otherwise")
	}
	routeMode := core.NoiseRouteOff
	switch *noiseRoute {
	case "":
	case "pure":
		routeMode = core.NoiseRoutePure
	case "blend":
		routeMode = core.NoiseRouteBlend
	default:
		return cli.Usagef("unknown -noise-route %q: want pure or blend", *noiseRoute)
	}
	// Remote sweeps hand cache, journal, and pool sizing to the daemon;
	// flags that would silently do nothing (or fight the server) are
	// rejected rather than ignored.
	if *server != "" {
		if *fig == 0 {
			return cli.Usagef("-server only applies to -fig sweeps; it would be ignored under %s", modes[0])
		}
		if *cachedir != "" {
			return cli.Usagef("-cachedir does not apply with -server: the daemon owns the result cache")
		}
		if *resume != "" {
			return cli.Usagef("-resume does not apply with -server: the daemon journals sweeps server-side (qcbenchd -journaldir)")
		}
		if *parallelism != 0 {
			return cli.Usagef("-parallelism does not apply with -server: the daemon sizes its own worker pool")
		}
		if noiseConfigured {
			return cli.Usagef("noise flags are not supported with -server yet; run the sweep locally")
		}
	}
	postSizes, err := parsePosts(*posts)
	if err != nil {
		return cli.Usagef("bad -posts: %v", err)
	}
	quick := !*full
	var spec experiments.SweepSpec
	if *fig != 0 {
		switch *fig {
		case 4:
			spec = experiments.Fig4Spec(quick)
		case 11:
			spec = experiments.Fig11Spec(quick)
		case 12:
			spec = experiments.Fig12Spec(quick)
		case 13:
			spec = experiments.Fig13Spec(quick)
		case 14:
			spec = experiments.Fig14Spec(quick)
		default:
			return cli.Usagef("unknown figure %d: want 4, 11, 12, 13, or 14", *fig)
		}
		// -machines swaps in a custom comparison set, keeping the figure's
		// workloads, sizes, seed, and output format. Cell seeds derive from
		// (sweep ID, machine name), so specs that name= themselves after a
		// figure's stock machines reproduce its cells exactly.
		if *machines != "" {
			ms, err := experiments.MachinesFromSpecs(*machines)
			if err != nil {
				return cli.Usagef("bad -machines: %v", err)
			}
			spec.Machines = ms
		}
	}

	// Ctrl-C and SIGTERM cancel cooperatively instead of killing the
	// process: every in-flight cell stops at its next poll, and the
	// deferred cache-stats (and, under -tolerant, partial-results) paths
	// still run.
	ctx, stop := cli.NotifyContext(context.Background())
	defer stop()

	// One unified experiment configuration feeds every mode: the CLI flags
	// land in experiments.Config once instead of positionally per harness.
	cfg := experiments.DefaultConfig()
	cfg.Quick = quick
	cfg.Trials = *trialsFlag
	cfg.Parallelism = *parallelism
	cfg.ProfileGuided = *profile
	cfg.ProfileIterations = *iterations
	cfg.CellTimeout = *cellTimeout
	cfg.Deadline = *deadline
	cfg.Tolerant = *tolerant

	if *cachedir != "" {
		store, err := core.NewMetricsCache(0, *cachedir)
		if err != nil {
			return err
		}
		cfg.Cache = store
		defer func() {
			st := store.Stats()
			fmt.Fprintf(stderr, "cache: %d hits (%d mem, %d disk), %d misses, %d evaluations\n",
				st.Hits(), st.MemHits, st.DiskHits, st.Misses, st.Fills)
		}()
	}

	switch {
	case *corral:
		rows, err := experiments.CorralScalingContext(ctx, postSizes, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "Corral scaling study (paper §7 future work): ring growth with")
		fmt.Fprintln(stdout, "the long fence at ~1/3 of the ring; QV at 80% machine fill.")
		fmt.Fprint(stdout, experiments.FormatCorralScaling(rows))
	case *headline:
		h, err := experiments.HeadlinesContext(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "QuantumVolume average ratios, Heavy-Hex+CNOT / Hypercube+sqrtISWAP (sizes %v):\n", h.Sizes)
		fmt.Fprintf(stdout, "  total SWAPs        %.2fx   (paper: 2.57x)\n", h.SwapRatio)
		fmt.Fprintf(stdout, "  critical SWAPs     %.2fx   (paper: 5.63x)\n", h.CriticalSwapRatio)
		fmt.Fprintf(stdout, "  total 2Q gates     %.2fx   (paper: 3.16x)\n", h.Total2QRatio)
		fmt.Fprintf(stdout, "  pulse duration     %.2fx   (paper: 6.11x)\n", h.DurationRatio)
	default:
		// Figure specs pin their historical seed and explicit trial counts
		// (and with them their cache keys), so graft only the flag-driven
		// knobs onto the spec's Config.
		spec.Parallelism = cfg.Parallelism
		spec.Cache = cfg.Cache
		spec.ProfileGuided = cfg.ProfileGuided
		spec.ProfileIterations = cfg.ProfileIterations
		spec.CellTimeout = cfg.CellTimeout
		spec.Deadline = cfg.Deadline
		spec.Tolerant = cfg.Tolerant
		spec.Noise = noiseProfile
		spec.Fidelity = fidelity
		spec.NoiseShots = *noiseShots
		spec.NoiseRoute = routeMode
		if *trialsFlag > 0 {
			spec.Trials = *trialsFlag
		}
		headerSuffix := fmt.Sprintf("%s mode%s%s", mode(quick), profiledSuffix(*profile), noiseSuffix(fidelity, routeMode))
		if *server != "" {
			series, err := remoteSweep(ctx, *server, *fig, *machines, spec)
			if err != nil && !spec.Tolerant {
				var ce experiments.CellErrors
				if errors.As(err, &ce) && len(ce) > 0 {
					// Mirror the local fail-fast surface: one cell error,
					// with the sweep coordinates, instead of a partial print.
					c := ce[0]
					return fmt.Errorf("experiments: %s/%s/%s(%d): %w", spec.ID, c.Machine, c.Workload, c.Size, c.Err)
				}
				return err
			}
			return printSweep(stdout, stderr, *csv, *fig, headerSuffix, spec.Kind, series, err)
		}
		if *resume != "" {
			j, err := experiments.OpenJournal(*resume)
			if err != nil {
				return err
			}
			defer j.Close()
			resumed := j.Len()
			defer func() {
				fmt.Fprintf(stderr, "journal: %d cells replayed, %d recorded this run\n",
					resumed, j.Len()-resumed)
			}()
			spec.Journal = j
		}
		series, err := spec.RunContext(ctx)
		return printSweep(stdout, stderr, *csv, *fig, headerSuffix, spec.Kind, series, err)
	}
	return nil
}

// printSweep renders a completed -fig sweep: the full table or CSV when err
// is nil, the PARTIAL header plus surviving cells when err is a tolerant
// sweep's experiments.CellErrors aggregate (per-cell failures then go to
// stderr), and the bare error otherwise. Local and remote sweeps share this
// one path, so a -server run's output is byte-identical to a local run's.
func printSweep(stdout, stderr io.Writer, useCSV bool, fig int, headerSuffix string, kind experiments.SweepKind, series []experiments.Series, err error) error {
	if err != nil {
		var ce experiments.CellErrors
		if !errors.As(err, &ce) {
			return err
		}
		if useCSV {
			fmt.Fprint(stdout, experiments.SeriesCSV(series, kind))
		} else {
			fmt.Fprintf(stdout, "Figure %d (%s) — PARTIAL, %d cells failed\n", fig, headerSuffix, len(ce))
			fmt.Fprint(stdout, experiments.FormatSeries(series, kind))
		}
		for _, c := range ce {
			fmt.Fprintf(stderr, "cell failed: %v\n", c)
		}
		return err
	}
	if useCSV {
		fmt.Fprint(stdout, experiments.SeriesCSV(series, kind))
		return nil
	}
	fmt.Fprintf(stdout, "Figure %d (%s)\n", fig, headerSuffix)
	fmt.Fprint(stdout, experiments.FormatSeries(series, kind))
	return nil
}

// remoteSweep runs a -fig sweep on a qcbenchd server instead of locally.
// The wire request carries the same spec the local path would run — the
// figure's machines as declarative specs (FigMachineSpecs round-trips the
// stock sets name-and-fingerprint-identically), the spec's pinned seed and
// explicit trial count, and the same profile knobs — so cell seeds, cache
// keys, and therefore every metric match a local run exactly.
func remoteSweep(ctx context.Context, server string, fig int, machineSpecs string, spec experiments.SweepSpec) ([]experiments.Series, error) {
	specList := machineSpecs
	if specList == "" {
		var err error
		if specList, err = experiments.FigMachineSpecs(fig); err != nil {
			return nil, err
		}
	}
	kindName := "swaps"
	if spec.Kind == experiments.Codesign {
		kindName = "codesign"
	}
	routerName := ""
	if spec.Router == core.RouterSabre {
		routerName = "sabre"
	}
	req := daemon.SweepRequest{
		ID:                spec.ID,
		Kind:              kindName,
		Machines:          specList,
		Workloads:         spec.Workloads,
		Sizes:             spec.Sizes,
		Seed:              spec.Seed,
		Trials:            spec.Trials,
		Router:            routerName,
		Profile:           spec.ProfileGuided,
		ProfileIterations: spec.ProfileIterations,
		CellTimeoutMS:     spec.CellTimeout.Milliseconds(),
	}
	if spec.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Deadline)
		defer cancel()
	}
	return daemon.NewClient(strings.TrimRight(server, "/")).SweepSeries(ctx, req)
}

func mode(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

func profiledSuffix(profiled bool) string {
	if profiled {
		return ", profile-guided"
	}
	return ""
}

// noiseSuffix describes the noise configuration in the figure header, empty
// when noise is off so historical headers stay byte-identical.
func noiseSuffix(fidelity core.FidelityModel, route core.NoiseRouteMode) string {
	var parts []string
	switch fidelity {
	case core.FidelityCount:
		parts = append(parts, "noise: count model")
	case core.FidelityMonteCarlo:
		parts = append(parts, "noise: montecarlo")
	}
	switch route {
	case core.NoiseRoutePure:
		parts = append(parts, "error-weighted routing")
	case core.NoiseRouteBlend:
		parts = append(parts, "error×pressure routing")
	}
	if len(parts) == 0 {
		return ""
	}
	return ", " + strings.Join(parts, ", ")
}

// parsePosts parses the -posts list. Non-positive sizes are rejected here
// (a negative ring size is always a typo); the ≥5-posts design minimum
// still belongs to experiments.CorralScaling.
func parsePosts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", part)
		}
		if v < 1 {
			return nil, fmt.Errorf("ring size %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
