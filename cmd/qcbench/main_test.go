package main

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
)

// runQ drives run() in-process, returning stdout, stderr, and the error.
func runQ(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb strings.Builder
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func wantUsageError(t *testing.T, err error, fragment string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected usage error containing %q, got nil", fragment)
	}
	var ue cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("expected usageError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestConflictingModesRejected(t *testing.T) {
	// -headline used to win silently over an explicit -fig.
	_, _, err := runQ(t, "-fig", "11", "-headline")
	wantUsageError(t, err, "mutually exclusive")
	_, _, err = runQ(t, "-headline", "-corralscaling")
	wantUsageError(t, err, "mutually exclusive")
	_, _, err = runQ(t, "-fig", "4", "-corralscaling", "-headline")
	wantUsageError(t, err, "mutually exclusive")
}

func TestIgnoredFlagsRejected(t *testing.T) {
	// -csv used to be dropped without a word under -headline/-corralscaling.
	_, _, err := runQ(t, "-headline", "-csv")
	wantUsageError(t, err, "-csv")
	_, _, err = runQ(t, "-corralscaling", "-csv")
	wantUsageError(t, err, "-csv")
	_, _, err = runQ(t, "-fig", "11", "-posts", "6")
	wantUsageError(t, err, "-posts")
	// Explicitly passing the default value is still an explicitly-set flag.
	_, _, err = runQ(t, "-fig", "11", "-posts", "6,8,10,12,16")
	wantUsageError(t, err, "-posts")
}

func TestNoModeIsUsageError(t *testing.T) {
	_, stderr, err := runQ(t)
	wantUsageError(t, err, "choose one")
	if !strings.Contains(stderr, "Usage of qcbench") {
		t.Errorf("usage text not printed, stderr: %q", stderr)
	}
}

func TestUnknownFigureRejected(t *testing.T) {
	_, _, err := runQ(t, "-fig", "7")
	wantUsageError(t, err, "unknown figure 7")
}

func TestPositionalArgsRejected(t *testing.T) {
	_, _, err := runQ(t, "-headline", "extra")
	wantUsageError(t, err, "unexpected arguments")
}

func TestBadPostsRejected(t *testing.T) {
	_, _, err := runQ(t, "-corralscaling", "-posts", "6,eight")
	wantUsageError(t, err, "not an integer")
}

func TestNegativeKnobsRejected(t *testing.T) {
	// Negative values used to be swallowed silently: a negative trial or
	// worker count reads as "use the default" deep inside the pipeline,
	// and a negative ring size only failed later with a confusing
	// "needs ≥5 posts".
	_, _, err := runQ(t, "-fig", "11", "-trials", "-3")
	wantUsageError(t, err, "-trials")
	_, _, err = runQ(t, "-fig", "11", "-parallelism", "-1")
	wantUsageError(t, err, "-parallelism")
	_, _, err = runQ(t, "-corralscaling", "-posts", "-6,8")
	wantUsageError(t, err, "must be positive")
	_, _, err = runQ(t, "-fig", "11", "-profile", "-iterations", "0")
	wantUsageError(t, err, "-iterations")
	_, _, err = runQ(t, "-fig", "11", "-profile", "-iterations", "-2")
	wantUsageError(t, err, "-iterations")
}

func TestIterationsRequiresProfile(t *testing.T) {
	_, _, err := runQ(t, "-fig", "11", "-iterations", "2")
	wantUsageError(t, err, "-iterations")
	// Even the default value set explicitly is an explicitly-set flag.
	_, _, err = runQ(t, "-headline", "-iterations", "1")
	wantUsageError(t, err, "-iterations")
}

func TestCacheStatsPrintOnFailure(t *testing.T) {
	// A ring below 5 posts fails inside the corral study — after the cache
	// store exists. The stats line must still print: the old log.Fatal exit
	// skipped the deferred printer on every error path.
	dir := filepath.Join(t.TempDir(), "cache")
	_, stderr, err := runQ(t, "-corralscaling", "-posts", "3", "-cachedir", dir)
	if err == nil {
		t.Fatal("expected corral-scaling failure for 3 posts")
	}
	if errors.As(err, new(cli.UsageError)) {
		t.Fatalf("runtime failure misclassified as usage error: %v", err)
	}
	if !strings.Contains(stderr, "cache:") {
		t.Errorf("cache stats not printed on failure path, stderr: %q", stderr)
	}
}

func TestCacheStatsPrintOnSuccess(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	stdout, stderr, err := runQ(t, "-corralscaling", "-posts", "6", "-cachedir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "Corral scaling study") {
		t.Errorf("missing study output, stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "cache:") {
		t.Errorf("cache stats not printed, stderr: %q", stderr)
	}
}

func TestParseErrorIsDistinguished(t *testing.T) {
	_, _, err := runQ(t, "-no-such-flag")
	if err == nil || !cli.IsParseError(err) {
		t.Fatalf("expected parse error, got %v", err)
	}
}

func TestRobustnessFlagsValidated(t *testing.T) {
	_, _, err := runQ(t, "-fig", "11", "-cell-timeout", "-1s")
	wantUsageError(t, err, "-cell-timeout")
	_, _, err = runQ(t, "-fig", "11", "-deadline", "-1s")
	wantUsageError(t, err, "-deadline")
	// -tolerant and -resume are sweep machinery; reject them where they
	// would be silently ignored.
	_, _, err = runQ(t, "-headline", "-tolerant")
	wantUsageError(t, err, "-tolerant")
	_, _, err = runQ(t, "-corralscaling", "-resume", "sweep.journal")
	wantUsageError(t, err, "-resume")
}

func TestFaultDeadlineExpires(t *testing.T) {
	// An already-expired whole-run deadline must surface as the context
	// error, not a synthetic sweep failure, on every mode.
	_, _, err := runQ(t, "-fig", "11", "-deadline", "1ns")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("-fig under 1ns deadline = %v, want context.DeadlineExceeded", err)
	}
	_, _, err = runQ(t, "-headline", "-deadline", "1ns")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("-headline under 1ns deadline = %v, want context.DeadlineExceeded", err)
	}
	_, _, err = runQ(t, "-corralscaling", "-deadline", "1ns")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("-corralscaling under 1ns deadline = %v, want context.DeadlineExceeded", err)
	}
}

func TestResumeJournalReplaysSweep(t *testing.T) {
	// First run populates the journal; the second must replay every cell
	// (0 recorded) and print byte-identical results.
	journal := filepath.Join(t.TempDir(), "fig11.journal")
	out1, stderr1, err := runQ(t, "-fig", "11", "-resume", journal)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr1, "journal: 0 cells replayed") {
		t.Errorf("first run should start from an empty journal, stderr: %q", stderr1)
	}
	out2, stderr2, err := runQ(t, "-fig", "11", "-resume", journal)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("journal-replayed sweep output diverged from the recording run")
	}
	if !strings.Contains(stderr2, "0 recorded this run") {
		t.Errorf("second run should replay every cell, stderr: %q", stderr2)
	}
}

func TestMachinesRequiresFig(t *testing.T) {
	_, _, err := runQ(t, "-headline", "-machines", "hypercube:dim=4")
	wantUsageError(t, err, "-machines")
	_, _, err = runQ(t, "-corralscaling", "-machines", "hypercube:dim=4")
	wantUsageError(t, err, "-machines")
}

func TestMachinesRejectsBadSpecs(t *testing.T) {
	_, _, err := runQ(t, "-fig", "11", "-machines", "moebius:dim=3")
	wantUsageError(t, err, "unknown family")
	_, _, err = runQ(t, "-fig", "11", "-machines", "grid:rows=4")
	wantUsageError(t, err, "missing required parameter")
	// Two unnamed identical specs collapse to one label; the sweep would
	// silently fold their rows together.
	_, _, err = runQ(t, "-fig", "11", "-machines", "hypercube:dim=4;hypercube:dim=4")
	wantUsageError(t, err, "duplicate machine name")
}

// TestMachinesReproducesFig11 is the acceptance criterion for the
// architecture registry: a -machines list of specs equivalent to Fig. 11's
// stock machine set — same topologies, same CX counting basis, name=
// parameters matching the stock labels — reproduces -fig 11 output
// byte-for-byte, because every cell's seed derives only from the sweep ID
// and the machine's name, and the registry builds fingerprint-identical
// graphs.
func TestMachinesReproducesFig11(t *testing.T) {
	stock, _, err := runQ(t, "-fig", "11")
	if err != nil {
		t.Fatal(err)
	}
	specs := "grid:rows=4,cols=4,name=Square-Lattice," +
		"hypercube:dim=4,name=Hypercube," +
		"tree:levels=2,name=Tree," +
		"tree-rr:levels=2,name=Tree-RR," +
		"corral:posts=8,strides=1+1,name=Corral(1,1)," +
		"corral:posts=8,strides=1+3,name=Corral(1,2)"
	viaSpecs, _, err := runQ(t, "-fig", "11", "-machines", specs)
	if err != nil {
		t.Fatal(err)
	}
	if stock != viaSpecs {
		t.Fatalf("-machines with equivalent specs diverged from -fig 11:\nstock:\n%s\nspecs:\n%s", stock, viaSpecs)
	}
	// A genuinely different machine set must change the output (guards
	// against the comparison passing vacuously).
	other, _, err := runQ(t, "-fig", "11", "-machines", "hypercube:dim=4,name=Hypercube")
	if err != nil {
		t.Fatal(err)
	}
	if other == stock {
		t.Fatal("single-machine sweep unexpectedly identical to the stock set")
	}
}

func TestNoiseFlagsValidated(t *testing.T) {
	// Noise flags are sweep machinery: reject them wherever they would be
	// silently ignored or silently wrong.
	_, _, err := runQ(t, "-headline", "-noise", "e2q=0.002")
	wantUsageError(t, err, "noise flags")
	_, _, err = runQ(t, "-corralscaling", "-noise-model", "count")
	wantUsageError(t, err, "noise flags")
	// A model or routing mode without any profile source can only ever
	// fail per cell; catch it up front.
	_, _, err = runQ(t, "-fig", "11", "-noise-model", "count")
	wantUsageError(t, err, "need a noise profile")
	_, _, err = runQ(t, "-fig", "11", "-noise-route", "pure")
	wantUsageError(t, err, "need a noise profile")
	_, _, err = runQ(t, "-fig", "11", "-noise", "bogus=1")
	wantUsageError(t, err, "bad -noise")
	_, _, err = runQ(t, "-fig", "11", "-noise", "e2q=0.002", "-noise-model", "quantum")
	wantUsageError(t, err, "unknown -noise-model")
	_, _, err = runQ(t, "-fig", "11", "-noise", "e2q=0.002", "-noise-route", "fast")
	wantUsageError(t, err, "unknown -noise-route")
	_, _, err = runQ(t, "-fig", "11", "-noise", "e2q=0.002", "-noise-shots", "-5")
	wantUsageError(t, err, "-noise-shots")
	// Shots under the count model would be ignored; that's a mistake too.
	_, _, err = runQ(t, "-fig", "11", "-noise", "e2q=0.002", "-noise-shots", "16")
	wantUsageError(t, err, "-noise-shots")
}

func TestNoiseSweepOutput(t *testing.T) {
	baseline, _, err := runQ(t, "-fig", "11")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(baseline, "estFidelity") || strings.Contains(baseline, "noise:") {
		t.Fatal("noise-off -fig 11 output mentions noise; goldens would break")
	}
	noisy, _, err := runQ(t, "-fig", "11", "-noise", "e2q=0.002,tdec=0.001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(noisy, "[estFidelity]") {
		t.Fatal("-noise output has no [estFidelity] block")
	}
	if !strings.Contains(noisy, "noise: count model") {
		t.Fatalf("-noise header missing the model suffix:\n%s", firstLine(noisy))
	}
	// The routing tables themselves are untouched: the noisy output is the
	// baseline plus fidelity blocks and a header suffix.
	for _, line := range strings.Split(baseline, "\n") {
		if strings.HasPrefix(line, "Figure") || line == "" {
			continue
		}
		if !strings.Contains(noisy, line) {
			t.Fatalf("baseline row missing from noisy output: %q", line)
		}
	}
	csv, _, err := runQ(t, "-fig", "11", "-csv", "-noise", "e2q=0.002,tdec=0.001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, "est_fidelity") {
		t.Fatal("-csv -noise output has no est_fidelity column")
	}
}

func TestNoiseMonteCarloAndSpecProfiles(t *testing.T) {
	// Machines can carry their own profiles via spec keys; -noise-route is
	// then legal without -noise.
	out, _, err := runQ(t, "-fig", "11",
		"-machines", "grid:rows=4,cols=4,basis=syc,e2q=0.001,e2q-5-6=0.3,name=HetGrid",
		"-noise-route", "pure")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "error-weighted routing") {
		t.Fatalf("-noise-route header suffix missing:\n%s", firstLine(out))
	}
	if !strings.Contains(out, "[estFidelity]") {
		t.Fatal("spec-profile sweep reported no fidelity")
	}
	// Monte-Carlo end to end, small shot count.
	mc, _, err := runQ(t, "-fig", "11",
		"-machines", "grid:rows=4,cols=4,basis=syc,e2q=0.002,name=G",
		"-noise-model", "montecarlo", "-noise-shots", "8")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mc, "noise: montecarlo") || !strings.Contains(mc, "[estFidelity]") {
		t.Fatalf("montecarlo sweep output malformed:\n%s", firstLine(mc))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
