package main

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/daemon"
)

// startDaemon boots an in-process qcbenchd for -server tests and returns
// its base URL; the graceful drain runs in cleanup.
func startDaemon(t *testing.T, cfg daemon.Config) string {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {}
	}
	srv, err := daemon.New(cfg)
	if err != nil {
		t.Fatalf("daemon.New: %v", err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatalf("daemon.Listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	var once sync.Once
	t.Cleanup(func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("daemon.Serve: %v", err)
			}
		})
	})
	return "http://" + addr
}

// TestServerSweepByteIdentical is the remote-fidelity acceptance check at
// the CLI surface: the same figure sweep run locally and against a daemon
// produces byte-identical stdout, in both table and CSV form.
func TestServerSweepByteIdentical(t *testing.T) {
	base := startDaemon(t, daemon.Config{Parallelism: 2})
	args := []string{"-fig", "11", "-machines", "grid:rows=4,cols=4,name=Square-Lattice", "-trials", "1"}

	local, _, err := runQ(t, args...)
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	remote, _, err := runQ(t, append([]string{"-server", base}, args...)...)
	if err != nil {
		t.Fatalf("remote sweep: %v", err)
	}
	if remote != local {
		t.Errorf("remote stdout diverged from local:\nremote:\n%s\nlocal:\n%s", remote, local)
	}

	localCSV, _, err := runQ(t, append(args, "-csv")...)
	if err != nil {
		t.Fatalf("local csv sweep: %v", err)
	}
	remoteCSV, _, err := runQ(t, append([]string{"-server", base, "-csv"}, args...)...)
	if err != nil {
		t.Fatalf("remote csv sweep: %v", err)
	}
	if remoteCSV != localCSV {
		t.Errorf("remote CSV diverged from local:\nremote:\n%s\nlocal:\n%s", remoteCSV, localCSV)
	}
}

// TestServerStockFigureMachines pins the FigMachineSpecs round-trip at the
// CLI: a -server sweep without -machines ships the figure's stock machine
// set as specs and still renders byte-identically to the local run.
func TestServerStockFigureMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig 11 sweep in -short mode")
	}
	base := startDaemon(t, daemon.Config{Parallelism: 0})
	args := []string{"-fig", "11", "-trials", "1"}
	local, _, err := runQ(t, args...)
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	remote, _, err := runQ(t, append([]string{"-server", base}, args...)...)
	if err != nil {
		t.Fatalf("remote sweep: %v", err)
	}
	if remote != local {
		t.Errorf("remote stock-machine sweep diverged from local:\nremote:\n%s\nlocal:\n%s", remote, local)
	}
}

// TestServerConflictingFlagsRejected pins the -server flag surface: knobs
// the daemon owns (cache, journal, pool size) and not-yet-supported noise
// flags are usage errors, not silent no-ops.
func TestServerConflictingFlagsRejected(t *testing.T) {
	url := "http://127.0.0.1:1"
	_, _, err := runQ(t, "-headline", "-server", url)
	wantUsageError(t, err, "-server only applies to -fig sweeps")
	_, _, err = runQ(t, "-fig", "11", "-server", url, "-cachedir", t.TempDir())
	wantUsageError(t, err, "daemon owns the result cache")
	_, _, err = runQ(t, "-fig", "11", "-server", url, "-resume", "j.journal")
	wantUsageError(t, err, "journals sweeps server-side")
	_, _, err = runQ(t, "-fig", "11", "-server", url, "-parallelism", "2")
	wantUsageError(t, err, "daemon sizes its own worker pool")
	_, _, err = runQ(t, "-fig", "11", "-server", url, "-noise", "e2q=0.002,tdec=0.001")
	wantUsageError(t, err, "not supported with -server")
}

// TestServerUnreachableFails pins the failure surface: a dead server is a
// plain error (after the client's retry budget), not a hang or a zero
// table.
func TestServerUnreachableFails(t *testing.T) {
	_, _, err := runQ(t, "-fig", "11", "-trials", "1",
		"-machines", "grid:rows=4,cols=4,name=Square-Lattice",
		"-server", "http://127.0.0.1:1")
	if err == nil {
		t.Fatal("sweep against dead server succeeded")
	}
	if !strings.Contains(err.Error(), "connect") && !strings.Contains(err.Error(), "refused") {
		t.Errorf("dead-server error %q should mention the connection failure", err)
	}
}
