package main

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cli"
)

func runT(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb strings.Builder
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func wantUsageError(t *testing.T, err error, fragment string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected usage error containing %q, got nil", fragment)
	}
	if !errors.As(err, new(cli.UsageError)) {
		t.Fatalf("expected usage error, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestTablesByDefault(t *testing.T) {
	out, _, err := runT(t)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Table 1", "Table 2", "Corral(1,2)", "Hypercube"} {
		if !strings.Contains(out, frag) {
			t.Errorf("tables output missing %q", frag)
		}
	}
}

func TestListNames(t *testing.T) {
	out, _, err := runT(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "corral11") || !strings.Contains(out, "hypercube84") {
		t.Errorf("-list output incomplete: %q", out)
	}
}

func TestFamiliesInventory(t *testing.T) {
	out, _, err := runT(t, "-families")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 8 {
		t.Fatalf("expected ≥8 family lines, got %d:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if fields := strings.Split(line, "\t"); len(fields) != 3 {
			t.Errorf("family line not name<TAB>smoke<TAB>usage: %q", line)
		}
	}
	if !strings.Contains(out, "corral:posts=8,strides=1+1") {
		t.Errorf("-families missing corral smoke spec:\n%s", out)
	}
}

func TestDotByCatalogNameAndSpec(t *testing.T) {
	byName, _, err := runT(t, "-dot", "corral11")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(byName, "graph") || !strings.Contains(byName, "--") {
		t.Errorf("DOT output malformed: %q", byName)
	}
	bySpec, _, err := runT(t, "-dot", "corral:posts=8,strides=1+1")
	if err != nil {
		t.Fatal(err)
	}
	// Same edge structure; only the graph label may differ.
	if strings.Count(bySpec, "--") != strings.Count(byName, "--") {
		t.Errorf("spec-built corral has %d edges, catalog %d",
			strings.Count(bySpec, "--"), strings.Count(byName, "--"))
	}
}

func TestStatsRowForSpec(t *testing.T) {
	out, _, err := runT(t, "-stats", "hypercube:dim=4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "16") {
		t.Errorf("stats row missing qubit count: %q", out)
	}
}

func TestUsageErrors(t *testing.T) {
	_, _, err := runT(t, "-dot", "nonexistent")
	wantUsageError(t, err, "unknown topology")
	_, _, err = runT(t, "-dot", "moebius:rows=2")
	wantUsageError(t, err, "bad spec")
	_, _, err = runT(t, "-dot", "grid:rows=0,cols=4")
	wantUsageError(t, err, "bad spec")
	_, _, err = runT(t, "-list", "-families")
	wantUsageError(t, err, "mutually exclusive")
	_, _, err = runT(t, "extra")
	wantUsageError(t, err, "unexpected arguments")
	_, _, err = runT(t, "-no-such-flag")
	if err == nil || !cli.IsParseError(err) {
		t.Fatalf("expected parse error, got %v", err)
	}
}
