// Command topostat prints the measured topology properties behind the
// paper's Table 1 (16–20 qubit machines) and Table 2 (84-qubit machines):
// qubit count, diameter, average all-pairs distance, and average
// connectivity for every coupling graph in the study.
//
// With -dot NAME|SPEC it instead emits one coupling graph in Graphviz
// format — either a named catalog topology (see -list) or any declarative
// architecture spec ("corral:posts=11,strides=1+4"; see package arch and
// the README). -list prints the catalog names; -families prints one line
// per registered architecture family (name, smoke spec, usage) — the
// machine-readable inventory scripts/bench.sh sizes the registry grid
// from. -stats SPEC prints one Table-style row for an arbitrary spec.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/topology"
)

var graphs = map[string]func() *topology.Graph{
	"square16":    topology.SquareLattice16,
	"square84":    topology.SquareLattice84,
	"hex20":       topology.HexLattice20,
	"hex84":       topology.HexLattice84,
	"heavyhex20":  topology.HeavyHex20,
	"heavyhex84":  topology.HeavyHex84,
	"altdiag84":   topology.LatticeAltDiag84,
	"hypercube16": topology.Hypercube16,
	"hypercube84": topology.Hypercube84,
	"tree20":      topology.Tree20,
	"treerr20":    topology.TreeRR20,
	"tree84":      topology.Tree84,
	"treerr84":    topology.TreeRR84,
	"corral11":    topology.Corral11,
	"corral12":    topology.Corral12,
}

func main() {
	cli.Exit("topostat", run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("topostat", stderr)
	dot := fs.String("dot", "", "emit a topology as Graphviz DOT: a catalog name (see -list) or an architecture spec")
	list := fs.Bool("list", false, "list catalog topology names")
	families := fs.Bool("families", false, "list registered architecture families (name<TAB>smoke spec<TAB>usage)")
	stats := fs.String("stats", "", "print one stats row for an architecture spec")
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments %q (topostat takes flags only)", fs.Args())
	}
	var modes []string
	if *list {
		modes = append(modes, "-list")
	}
	if *families {
		modes = append(modes, "-families")
	}
	if *dot != "" {
		modes = append(modes, "-dot")
	}
	if *stats != "" {
		modes = append(modes, "-stats")
	}
	if len(modes) > 1 {
		return cli.Usagef("%v are mutually exclusive; choose one", modes)
	}
	switch {
	case *list:
		names := make([]string, 0, len(graphs))
		for k := range graphs {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintln(stdout, names)
	case *families:
		for _, f := range arch.Families() {
			fmt.Fprintf(stdout, "%s\t%s\t%s\n", f.Name, f.Smoke, f.Usage)
		}
	case *dot != "":
		g, err := resolveGraph(*dot)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, g.DOT())
	case *stats != "":
		g, err := resolveGraph(*stats)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.FormatStats([]topology.Stats{g.Stats()}))
	default:
		fmt.Fprintln(stdout, "Table 1: Topologies and Connectivities (16-20 qubits)")
		fmt.Fprint(stdout, experiments.FormatStats(experiments.Table1()))
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "Table 2: Scaled Topologies and Connectivities (84 qubits)")
		fmt.Fprint(stdout, experiments.FormatStats(experiments.Table2()))
	}
	return nil
}

// resolveGraph accepts either a catalog shorthand (square16) or a full
// architecture spec (grid:rows=4,cols=4): specs are distinguished by their
// family head, so catalog names never shadow the registry grammar.
func resolveGraph(name string) (*topology.Graph, error) {
	if mk, ok := graphs[name]; ok {
		return mk(), nil
	}
	if strings.Contains(name, ":") {
		a, err := arch.Parse(name)
		if err != nil {
			return nil, cli.Usagef("bad spec %q: %v", name, err)
		}
		g, err := a.Build()
		if err != nil {
			return nil, cli.Usagef("bad spec %q: %v", name, err)
		}
		return g, nil
	}
	return nil, cli.Usagef("unknown topology %q; try -list, or pass an architecture spec (family:key=value,...)", name)
}
