// Command topostat prints the measured topology properties behind the
// paper's Table 1 (16–20 qubit machines) and Table 2 (84-qubit machines):
// qubit count, diameter, average all-pairs distance, and average
// connectivity for every coupling graph in the study. With -dot NAME it
// instead emits the named coupling graph in Graphviz format.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/topology"
)

var graphs = map[string]func() *topology.Graph{
	"square16":    topology.SquareLattice16,
	"square84":    topology.SquareLattice84,
	"hex20":       topology.HexLattice20,
	"hex84":       topology.HexLattice84,
	"heavyhex20":  topology.HeavyHex20,
	"heavyhex84":  topology.HeavyHex84,
	"altdiag84":   topology.LatticeAltDiag84,
	"hypercube16": topology.Hypercube16,
	"hypercube84": topology.Hypercube84,
	"tree20":      topology.Tree20,
	"treerr20":    topology.TreeRR20,
	"tree84":      topology.Tree84,
	"treerr84":    topology.TreeRR84,
	"corral11":    topology.Corral11,
	"corral12":    topology.Corral12,
}

func main() {
	dot := flag.String("dot", "", "emit the named topology as Graphviz DOT (see -list)")
	list := flag.Bool("list", false, "list topology names")
	flag.Parse()
	if *list {
		var names []string
		for k := range graphs {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Println(names)
		return
	}
	if *dot != "" {
		mk, ok := graphs[*dot]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown topology %q; try -list\n", *dot)
			os.Exit(2)
		}
		fmt.Print(mk().DOT())
		return
	}
	fmt.Println("Table 1: Topologies and Connectivities (16-20 qubits)")
	fmt.Print(experiments.FormatStats(experiments.Table1()))
	fmt.Println()
	fmt.Println("Table 2: Scaled Topologies and Connectivities (84 qubits)")
	fmt.Print(experiments.FormatStats(experiments.Table2()))
}
