// Command qcbenchd runs the evaluation service: an HTTP/JSON daemon that
// owns one two-tier result cache and serves concurrent evaluation and
// sweep requests with admission control, load shedding, cross-client
// deduplication, fault containment, and graceful SIGTERM drain (see
// package internal/daemon).
//
//	qcbenchd -addr 127.0.0.1:8123 -cachedir /var/cache/qcbench
//
// Endpoints: POST /evaluate (one machine/workload/size evaluation → JSON
// metrics), POST /sweep (streaming NDJSON figure sweep with journal-backed
// resume when -journaldir is set), GET /healthz (liveness), GET /readyz
// (readiness: 503 while draining or while the disk cache tier is
// quarantined), GET /metrics (Prometheus text).
//
// -probe N -target URL flips the binary into client mode: it fires N
// concurrent identical /evaluate requests at a running daemon and verifies
// the contract the daemon exists for — all responses byte-identical, and
// the /metrics counters showing the batch cost at most one evaluation
// (exactly one when the key was cold, zero when warm). Used by the check
// script's smoke arm; exits nonzero on any violation.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/daemon"
)

func main() {
	cli.Exit("qcbenchd", run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a single exit point, in the house CLI
// style: usage errors for conflicting flags, runtime errors otherwise.
func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("qcbenchd", stderr)
	addr := fs.String("addr", "127.0.0.1:0",
		"listen address (host:port; port 0 picks an ephemeral port, printed on startup)")
	cachedir := fs.String("cachedir", "",
		"directory for the on-disk result cache tier (\"\" = memory-only)")
	cacheEntries := fs.Int("cache-entries", 0,
		"in-memory cache entry bound (0 = default)")
	parallelism := fs.Int("parallelism", 0,
		"evaluation worker slots (0 = all cores)")
	queue := fs.Int("queue", 0,
		"evaluations that may wait for a slot before /evaluate sheds with 429 (0 = 4x slots)")
	maxTimeout := fs.Duration("max-timeout", 0,
		"upper bound on any request's evaluation deadline (0 = 2m)")
	drainTimeout := fs.Duration("drain-timeout", 0,
		"how long a SIGTERM drain waits for in-flight work (0 = 15s)")
	journaldir := fs.String("journaldir", "",
		"directory for /sweep resume journals (\"\" = sweeps are not journaled)")
	probe := fs.Int("probe", 0,
		"client mode: fire N concurrent identical /evaluate requests at -target and verify single-evaluation dedup")
	target := fs.String("target", "",
		"daemon base URL for -probe, e.g. http://127.0.0.1:8123")
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments %q (qcbenchd takes flags only)", fs.Args())
	}
	if *probe < 0 {
		return cli.Usagef("-probe must be ≥ 0, got %d", *probe)
	}
	if (*probe > 0) != (*target != "") {
		return cli.Usagef("-probe and -target go together: both or neither")
	}
	if *probe > 0 {
		return runProbe(*probe, *target, stdout)
	}
	if *parallelism < 0 {
		return cli.Usagef("-parallelism must be ≥ 0 (0 = all cores), got %d", *parallelism)
	}
	if *queue < 0 {
		return cli.Usagef("-queue must be ≥ 0 (0 = default), got %d", *queue)
	}
	srv, err := daemon.New(daemon.Config{
		Addr:         *addr,
		CacheEntries: *cacheEntries,
		CacheDir:     *cachedir,
		Parallelism:  *parallelism,
		QueueDepth:   *queue,
		MaxTimeout:   *maxTimeout,
		DrainTimeout: *drainTimeout,
		JournalDir:   *journaldir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	bound, err := srv.Listen()
	if err != nil {
		return err
	}
	// The listening line goes to stdout so scripted callers (the smoke arm)
	// can bind :0 and parse the real address.
	fmt.Fprintf(stdout, "qcbenchd listening on http://%s\n", bound)
	if f, ok := stdout.(interface{ Sync() error }); ok {
		f.Sync() //nolint:errcheck // best-effort flush for pipe readers
	}
	ctx, stop := cli.NotifyContext(context.Background())
	defer stop()
	return srv.Serve(ctx)
}

// probeRequest is the tiny fixed evaluation the probe hammers: small
// enough to finish in milliseconds, identical across invocations so the
// batch collapses to one fill (cold) or zero (warm).
func probeRequest() daemon.EvaluateRequest {
	return daemon.EvaluateRequest{
		Machine:  "grid:rows=2,cols=2,name=probe",
		Workload: "GHZ",
		Size:     4,
		Seed:     1,
		Trials:   1,
	}
}

// counterOf extracts one counter value from a Prometheus text exposition.
func counterOf(metrics, name string) (uint64, error) {
	sc := bufio.NewScanner(strings.NewReader(metrics))
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("qcbenchd: bad %s value %q", name, rest)
		}
		return v, nil
	}
	return 0, fmt.Errorf("qcbenchd: metric %s not found", name)
}

// cacheCounters snapshots the dedup-accounting counters from /metrics.
type cacheCounters struct {
	fills, dedups, memHits, diskHits uint64
}

func fetchCounters(ctx context.Context, baseURL string) (cacheCounters, error) {
	var c cacheCounters
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return c, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return c, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return c, err
	}
	text := string(data)
	for _, f := range []struct {
		name string
		dst  *uint64
	}{
		{"qcbenchd_cache_fills_total", &c.fills},
		{"qcbenchd_cache_dedups_total", &c.dedups},
		{"qcbenchd_cache_mem_hits_total", &c.memHits},
		{"qcbenchd_cache_disk_hits_total", &c.diskHits},
	} {
		v, err := counterOf(text, f.name)
		if err != nil {
			return c, err
		}
		*f.dst = v
	}
	return c, nil
}

// runProbe fires n concurrent identical evaluations and verifies the
// dedup contract via /metrics deltas: the whole batch costs at most one
// evaluation, every other request is a dedup join or a cache hit, and all
// responses are byte-identical.
func runProbe(n int, target string, stdout io.Writer) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	baseURL := strings.TrimRight(target, "/")
	before, err := fetchCounters(ctx, baseURL)
	if err != nil {
		return err
	}
	req := probeRequest()
	type result struct {
		met core.Metrics
		err error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// One independent client per goroutine: no shared retry state,
			// like N separate qcbench processes.
			c := daemon.NewClient(baseURL)
			c.JitterSeed = uint64(i + 1)
			results[i].met, results[i].err = c.Evaluate(ctx, req)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			return fmt.Errorf("qcbenchd: probe request %d: %w", i, r.err)
		}
		if r.met != results[0].met {
			return fmt.Errorf("qcbenchd: probe responses diverge: %+v vs %+v", r.met, results[0].met)
		}
	}
	after, err := fetchCounters(ctx, baseURL)
	if err != nil {
		return err
	}
	fills := after.fills - before.fills
	served := (after.dedups - before.dedups) + (after.memHits - before.memHits) + (after.diskHits - before.diskHits)
	if fills > 1 {
		return fmt.Errorf("qcbenchd: probe cost %d evaluations, want ≤ 1", fills)
	}
	if fills+served < uint64(n) {
		return fmt.Errorf("qcbenchd: probe accounting short: %d fills + %d dedup/hits < %d requests", fills, served, n)
	}
	fmt.Fprintf(stdout, "probe ok: %d requests, fills=%d dedup_or_hits=%d\n", n, fills, served)
	return nil
}
