// Command transpile runs one workload through the full co-design pipeline
// on a named machine and reports the paper's metrics — the downstream-user
// tool for exploring machine/workload pairs:
//
//	transpile -workload QFT -n 12 -machine tree20
//	transpile -workload QAOAVanilla -n 16 -machine corral12 -print
//	transpile -list
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"repro"
	"repro/internal/qasm"
)

var machines = map[string]func() repro.Machine{
	"heavyhex20":  repro.HeavyHex20CX,
	"square16":    repro.SquareLattice16SYC,
	"tree20":      repro.Tree20SqrtISwap,
	"treerr20":    repro.TreeRR20SqrtISwap,
	"corral11":    repro.Corral11SqrtISwap,
	"corral12":    repro.Corral12SqrtISwap,
	"hypercube16": repro.Hypercube16SqrtISwap,
	"heavyhex84":  repro.HeavyHex84CX,
	"square84":    repro.SquareLattice84SYC,
	"tree84":      repro.Tree84SqrtISwap,
	"treerr84":    repro.TreeRR84SqrtISwap,
	"hypercube84": repro.Hypercube84SqrtISwap,
}

func main() {
	workload := flag.String("workload", "QuantumVolume", "benchmark name (see -list)")
	n := flag.Int("n", 12, "circuit width in qubits")
	machine := flag.String("machine", "tree20", "machine name (see -list)")
	seed := flag.Int64("seed", 2022, "seed for circuit generation and routing")
	print := flag.Bool("print", false, "print the translated physical circuit")
	emitQASM := flag.Bool("qasm", false, "emit the routed circuit as OpenQASM 2.0 (exact gates)")
	list := flag.Bool("list", false, "list machines and workloads")
	flag.Parse()

	if *list {
		var names []string
		for k := range machines {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Println("machines: ", names)
		fmt.Println("workloads:", repro.WorkloadNames())
		return
	}
	mk, ok := machines[*machine]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q; try -list\n", *machine)
		os.Exit(2)
	}
	m := mk()
	rng := rand.New(rand.NewSource(*seed))
	c, err := repro.GenerateWorkload(*workload, *n, rng)
	if err != nil {
		log.Fatal(err)
	}
	opt := repro.DefaultOptions()
	opt.Seed = *seed
	tr, err := m.Transpile(c, opt)
	if err != nil {
		log.Fatal(err)
	}
	if *emitQASM {
		src, err := qasm.Export(tr.Routed, qasm.Options{ExpandNonStandard: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(src)
		return
	}
	met := tr.Metrics
	fmt.Printf("%s(%d) on %s (%d qubits, basis %v)\n", *workload, *n, m.Name, m.Graph.N(), m.Basis)
	fmt.Printf("  2Q gates before routing:  %d\n", met.PreRouting2Q)
	fmt.Printf("  SWAPs (induced/total):    %d / %d\n", met.InducedSwaps, met.TotalSwaps)
	fmt.Printf("  critical-path SWAPs:      %d\n", met.CriticalSwaps)
	fmt.Printf("  total basis 2Q gates:     %d\n", met.Total2Q)
	fmt.Printf("  critical-path 2Q gates:   %d\n", met.Critical2Q)
	fmt.Printf("  pulse duration:           %.1f\n", met.PulseDuration)
	if *print {
		fmt.Println()
		fmt.Print(tr.Translated.String())
	}
}
