// Command transpile runs one workload through the full co-design pipeline
// on a machine and reports the paper's metrics — the downstream-user tool
// for exploring machine/workload pairs:
//
//	transpile -workload QFT -n 12 -machine tree20
//	transpile -workload QAOAVanilla -n 16 -machine corral12 -print
//	transpile -workload GHZ -n 10 -machine "corral:posts=11,strides=1+4,basis=sqrtiswap"
//	transpile -list
//
// -machine accepts either a catalog shorthand (see -list) or a declarative
// architecture spec ("family:key=value,..."; see package arch and the
// README) — specs are recognized by their ':' head, so catalog names never
// collide with the grammar.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/qasm"
)

var machines = map[string]func() repro.Machine{
	"heavyhex20":  repro.HeavyHex20CX,
	"square16":    repro.SquareLattice16SYC,
	"tree20":      repro.Tree20SqrtISwap,
	"treerr20":    repro.TreeRR20SqrtISwap,
	"corral11":    repro.Corral11SqrtISwap,
	"corral12":    repro.Corral12SqrtISwap,
	"hypercube16": repro.Hypercube16SqrtISwap,
	"heavyhex84":  repro.HeavyHex84CX,
	"square84":    repro.SquareLattice84SYC,
	"tree84":      repro.Tree84SqrtISwap,
	"treerr84":    repro.TreeRR84SqrtISwap,
	"hypercube84": repro.Hypercube84SqrtISwap,
}

func main() {
	cli.Exit("transpile", run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("transpile", stderr)
	workload := fs.String("workload", "QuantumVolume", "benchmark name (see -list)")
	n := fs.Int("n", 12, "circuit width in qubits")
	machine := fs.String("machine", "tree20", "machine: a catalog name (see -list) or an architecture spec (family:key=value,...)")
	seed := fs.Int64("seed", 2022, "seed for circuit generation and routing")
	print := fs.Bool("print", false, "print the translated physical circuit")
	emitQASM := fs.Bool("qasm", false, "emit the routed circuit as OpenQASM 2.0 (exact gates)")
	list := fs.Bool("list", false, "list machines and workloads")
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments %q (transpile takes flags only)", fs.Args())
	}
	if *list {
		var names []string
		for k := range machines {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintln(stdout, "machines: ", names)
		fmt.Fprintln(stdout, "workloads:", repro.WorkloadNames())
		return nil
	}
	m, err := resolveMachine(*machine)
	if err != nil {
		return err
	}
	if *print && *emitQASM {
		return cli.Usagef("-print and -qasm are mutually exclusive; choose one")
	}
	if *n < 2 {
		return cli.Usagef("-n must be ≥ 2, got %d", *n)
	}
	rng := rand.New(rand.NewSource(*seed))
	c, err := repro.GenerateWorkload(*workload, *n, rng)
	if err != nil {
		return cli.Usagef("bad workload: %v", err)
	}
	opt := repro.DefaultOptions()
	opt.Seed = *seed
	tr, err := m.Transpile(c, opt)
	if err != nil {
		return err
	}
	if *emitQASM {
		src, err := qasm.Export(tr.Routed, qasm.Options{ExpandNonStandard: true})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, src)
		return nil
	}
	met := tr.Metrics
	fmt.Fprintf(stdout, "%s(%d) on %s (%d qubits, basis %v)\n", *workload, *n, m.Name, m.Graph.N(), m.Basis)
	fmt.Fprintf(stdout, "  2Q gates before routing:  %d\n", met.PreRouting2Q)
	fmt.Fprintf(stdout, "  SWAPs (induced/total):    %d / %d\n", met.InducedSwaps, met.TotalSwaps)
	fmt.Fprintf(stdout, "  critical-path SWAPs:      %d\n", met.CriticalSwaps)
	fmt.Fprintf(stdout, "  total basis 2Q gates:     %d\n", met.Total2Q)
	fmt.Fprintf(stdout, "  critical-path 2Q gates:   %d\n", met.Critical2Q)
	fmt.Fprintf(stdout, "  pulse duration:           %.1f\n", met.PulseDuration)
	if *print {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, tr.Translated.String())
	}
	return nil
}

// resolveMachine accepts either a catalog shorthand (tree20) or a full
// architecture spec (corral:posts=11,strides=1+4): specs are distinguished
// by their ':' family head, so catalog names never shadow the grammar.
func resolveMachine(name string) (repro.Machine, error) {
	if mk, ok := machines[name]; ok {
		return mk(), nil
	}
	if strings.Contains(name, ":") {
		m, err := repro.MachineFromSpec(name)
		if err != nil {
			return repro.Machine{}, cli.Usagef("bad machine spec %q: %v", name, err)
		}
		return m, nil
	}
	return repro.Machine{}, cli.Usagef("unknown machine %q; try -list, or pass an architecture spec (family:key=value,...)", name)
}
