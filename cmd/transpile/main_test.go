package main

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cli"
)

func runT(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb strings.Builder
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func wantUsageError(t *testing.T, err error, fragment string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected usage error containing %q, got nil", fragment)
	}
	if !errors.As(err, new(cli.UsageError)) {
		t.Fatalf("expected usage error, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestListMachinesAndWorkloads(t *testing.T) {
	out, _, err := runT(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"tree20", "hypercube84", "QFT", "QuantumVolume"} {
		if !strings.Contains(out, frag) {
			t.Errorf("-list output missing %q:\n%s", frag, out)
		}
	}
}

func TestMetricsReport(t *testing.T) {
	out, _, err := runT(t, "-workload", "GHZ", "-n", "8", "-machine", "tree20")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"GHZ(8) on Tree-sqrtISWAP (20 qubits",
		"2Q gates before routing:  7",
		"pulse duration:",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestSpecMachineMatchesCatalog(t *testing.T) {
	// The same architecture reached by catalog name and by spec must
	// transpile identically (fingerprint-equal graphs, same seeds per the
	// machine-name-keyed task seeding is not in play here — Transpile uses
	// opt.Seed directly).
	byName, _, err := runT(t, "-workload", "QFT", "-n", "10", "-machine", "corral11")
	if err != nil {
		t.Fatal(err)
	}
	bySpec, _, err := runT(t, "-workload", "QFT", "-n", "10",
		"-machine", "corral:posts=8,strides=1+1,basis=sqrtiswap,name=Corral11-sqrtISWAP")
	if err != nil {
		t.Fatal(err)
	}
	// Strip the header (graph display names differ) and compare metrics.
	cut := func(s string) string { return s[strings.Index(s, "\n"):] }
	if cut(byName) != cut(bySpec) {
		t.Errorf("catalog and spec metrics differ:\n%s\nvs\n%s", byName, bySpec)
	}
}

func TestQASMExport(t *testing.T) {
	out, _, err := runT(t, "-workload", "GHZ", "-n", "6", "-machine", "heavyhex20", "-qasm")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OPENQASM 2.0") || !strings.Contains(out, "qreg") {
		t.Errorf("QASM export malformed:\n%s", out)
	}
}

func TestPrintShowsCircuit(t *testing.T) {
	out, _, err := runT(t, "-workload", "GHZ", "-n", "4", "-machine", "square16", "-print")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pulse duration") || strings.Count(out, "\n") < 10 {
		t.Errorf("-print output missing circuit body:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	_, _, err := runT(t, "-machine", "nonexistent")
	wantUsageError(t, err, "unknown machine")
	_, _, err = runT(t, "-machine", "moebius:rows=2")
	wantUsageError(t, err, "bad machine spec")
	_, _, err = runT(t, "-machine", "grid:rows=0,cols=4")
	wantUsageError(t, err, "bad machine spec")
	_, _, err = runT(t, "-workload", "NoSuchBench")
	wantUsageError(t, err, "bad workload")
	_, _, err = runT(t, "-n", "1")
	wantUsageError(t, err, "-n must be ≥ 2")
	_, _, err = runT(t, "-print", "-qasm")
	wantUsageError(t, err, "mutually exclusive")
	_, _, err = runT(t, "extra")
	wantUsageError(t, err, "unexpected arguments")
	_, _, err = runT(t, "-no-such-flag")
	if err == nil || !cli.IsParseError(err) {
		t.Fatalf("expected parse error, got %v", err)
	}
}
