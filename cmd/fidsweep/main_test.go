package main

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cli"
)

// runF drives run() in-process, returning stdout, stderr, and the error.
func runF(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb strings.Builder
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func wantUsageError(t *testing.T, err error, fragment string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected usage error containing %q, got nil", fragment)
	}
	var ue cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("expected usageError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestNegativeKnobsRejected(t *testing.T) {
	// These used to be swallowed silently: RunFig15Parallel only rejected
	// samples < 1 deep inside the study, and a negative parallelism
	// quietly meant "serial".
	_, _, err := runF(t, "-samples", "0")
	wantUsageError(t, err, "-samples")
	_, _, err = runF(t, "-samples", "-5")
	wantUsageError(t, err, "-samples")
	_, _, err = runF(t, "-parallelism", "-1")
	wantUsageError(t, err, "-parallelism")
}

func TestPositionalArgsRejected(t *testing.T) {
	_, _, err := runF(t, "extra")
	wantUsageError(t, err, "unexpected arguments")
}

func TestParseErrorIsDistinguished(t *testing.T) {
	_, _, err := runF(t, "-no-such-flag")
	if err == nil || !cli.IsParseError(err) {
		t.Fatalf("expected parse error, got %v", err)
	}
}

func TestModelFlagValidated(t *testing.T) {
	_, _, err := runF(t, "-model", "quantum")
	wantUsageError(t, err, "unknown -model")
	_, _, err = runF(t, "-shots", "-3")
	wantUsageError(t, err, "-shots")
	// Shots under the count model would be silently ignored.
	_, _, err = runF(t, "-shots", "16")
	wantUsageError(t, err, "-shots")
	_, _, err = runF(t, "-model", "count", "-shots", "16")
	wantUsageError(t, err, "-shots")
}
