// Command fidsweep regenerates the paper's Fig. 15 pulse-duration
// sensitivity study: numerical decomposition of Haar-random two-qubit
// unitaries into k applications of n√iSWAP (n = 2..7, k = 2..8), and the
// Eq. 13 trade-off between decomposition error and linearly-scaling
// decoherence across iSWAP base fidelities 0.90..1.00.
//
// The paper samples N=50 targets; use -samples to trade time for smoothness.
// -parallelism bounds the decomposition worker pool (0 = all cores, 1 =
// serial; output is identical at any setting). Non-positive -samples and
// negative -parallelism are rejected with usage errors instead of being
// silently reinterpreted downstream.
//
// -model picks the bottom panel's decoherence arithmetic: count (default)
// is the paper's closed-form Fb^k (Eq. 13), byte-identical to historical
// output; montecarlo replaces it with trajectory sampling through each
// optimized template circuit (-shots trajectories per grid point, 0 =
// default), capturing the error propagation the closed form ignores. The
// top panel (decomposition infidelity) is noise-free and identical under
// both models.
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/experiments"
)

func main() {
	cli.Exit("fidsweep", run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a single exit point, mirroring qcbench:
// flag validation happens up front with usage errors, and the study runs
// under the unified experiments.Config.
func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("fidsweep", stderr)
	samples := fs.Int("samples", 50, "Haar-random targets (paper: 50)")
	seed := fs.Int64("seed", experiments.DefaultSeed, "RNG seed")
	parallelism := fs.Int("parallelism", 0,
		"decomposition worker pool size (0 = all cores, 1 = serial; output is identical at any setting)")
	model := fs.String("model", "count",
		"bottom-panel decoherence model: count (closed-form Fb^k) or montecarlo (trajectory sampling through each template)")
	shots := fs.Int("shots", 0,
		"Monte-Carlo trajectories per grid point for -model montecarlo (0 = default)")
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments %q (fidsweep takes flags only)", fs.Args())
	}
	// Negative knob values used to be swallowed silently: RunFig15Parallel
	// only rejected samples < 1 deep in the study, and a negative
	// parallelism quietly meant "serial". Reject both up front.
	if *samples < 1 {
		return cli.Usagef("-samples must be ≥ 1, got %d", *samples)
	}
	if *parallelism < 0 {
		return cli.Usagef("-parallelism must be ≥ 0 (0 = all cores), got %d", *parallelism)
	}
	fidelity := core.FidelityCount
	switch *model {
	case "count":
	case "montecarlo":
		fidelity = core.FidelityMonteCarlo
	default:
		return cli.Usagef("unknown -model %q: want count or montecarlo", *model)
	}
	if *shots < 0 {
		return cli.Usagef("-shots must be ≥ 0 (0 = default), got %d", *shots)
	}
	if *shots > 0 && fidelity != core.FidelityMonteCarlo {
		return cli.Usagef("-shots only applies to -model montecarlo; it would be ignored otherwise")
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Parallelism = *parallelism
	cfg.Fidelity = fidelity
	cfg.NoiseShots = *shots
	// Ctrl-C / SIGTERM cancel the study's worker pools instead of being
	// ridden out: a long -samples run dies promptly and cleanly.
	ctx, stop := cli.NotifyContext(context.Background())
	defer stop()
	res, err := experiments.RunFig15ConfigContext(ctx, *samples, decomp.Config{}, cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.Format())
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "§6.3 claims: total-infidelity reduction vs sqrtISWAP at Fb(iSWAP)=0.99")
	for _, tc := range []struct {
		n     int
		paper string
	}{{3, "14%"}, {4, "25%"}, {5, "11%"}} {
		imp, err := res.InfidelityImprovement(tc.n, 0.99)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %d-th root: %+.1f%%   (paper: %s)\n", tc.n, 100*imp, tc.paper)
	}
	return nil
}
