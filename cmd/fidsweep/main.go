// Command fidsweep regenerates the paper's Fig. 15 pulse-duration
// sensitivity study: numerical decomposition of Haar-random two-qubit
// unitaries into k applications of n√iSWAP (n = 2..7, k = 2..8), and the
// Eq. 13 trade-off between decomposition error and linearly-scaling
// decoherence across iSWAP base fidelities 0.90..1.00.
//
// The paper samples N=50 targets; use -samples to trade time for smoothness.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/decomp"
	"repro/internal/experiments"
)

func main() {
	samples := flag.Int("samples", 50, "Haar-random targets (paper: 50)")
	seed := flag.Int64("seed", 2022, "RNG seed")
	parallelism := flag.Int("parallelism", 0,
		"decomposition worker pool size (0 = all cores, 1 = serial; output is identical at any setting)")
	flag.Parse()

	res, err := experiments.RunFig15Parallel(*samples, *seed, decomp.Config{}, *parallelism)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Println()
	fmt.Println("§6.3 claims: total-infidelity reduction vs sqrtISWAP at Fb(iSWAP)=0.99")
	for _, tc := range []struct {
		n     int
		paper string
	}{{3, "14%"}, {4, "25%"}, {5, "11%"}} {
		imp, err := res.InfidelityImprovement(tc.n, 0.99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d-th root: %+.1f%%   (paper: %s)\n", tc.n, 100*imp, tc.paper)
	}
}
