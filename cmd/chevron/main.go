// Command chevron emits the Fig. 6-style parametrically-driven exchange
// map: excitation transfer between two SNAIL-coupled qubits as a function
// of pulse length and pump detuning, rendered as an ASCII heat map plus a
// CSV block for plotting.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/dynamics"
)

func main() {
	g := flag.Float64("g", 2*math.Pi*0.5, "exchange coupling (rad/us; default 0.5 MHz)")
	t1 := flag.Float64("t1", 40.0, "T1 decay time (us; 0 disables)")
	tmax := flag.Float64("tmax", 2.0, "max pulse length (us)")
	dmax := flag.Float64("dmax", 2*math.Pi*1.5, "max |detuning| (rad/us; default 1.5 MHz)")
	csv := flag.Bool("csv", false, "emit CSV instead of the ASCII map")
	flag.Parse()

	m := dynamics.ExchangeModel{G: *g, T1: *t1}
	ch, err := dynamics.ChevronMap(m, *tmax, 48, *dmax, 33)
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		fmt.Println("time_us,detuning_rad_us,transfer_prob")
		for i, t := range ch.Times {
			for j, d := range ch.Detunings {
				fmt.Printf("%.5f,%.5f,%.6f\n", t, d, ch.TransferB[i][j])
			}
		}
		return
	}
	shades := []rune(" .:-=+*#%@")
	fmt.Printf("Driven exchange chevron: g=%.3f rad/us, T1=%.1f us\n", *g, *t1)
	fmt.Printf("x: detuning %.2f..%.2f rad/us; y: pulse length 0..%.2f us (top to bottom)\n\n",
		-*dmax, *dmax, *tmax)
	for i := range ch.Times {
		row := make([]rune, len(ch.Detunings))
		for j := range ch.Detunings {
			p := ch.TransferB[i][j]
			idx := int(p * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			row[j] = shades[idx]
		}
		fmt.Printf("%5.2f |%s|\n", ch.Times[i], string(row))
	}
	fmt.Println("\n(resonant column oscillates fully; detuned columns are faster and shallower — paper Fig. 6)")
}
