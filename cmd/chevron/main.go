// Command chevron emits the Fig. 6-style parametrically-driven exchange
// map: excitation transfer between two SNAIL-coupled qubits as a function
// of pulse length and pump detuning, rendered as an ASCII heat map plus a
// CSV block for plotting.
package main

import (
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/cli"
	"repro/internal/dynamics"
)

func main() {
	cli.Exit("chevron", run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("chevron", stderr)
	g := fs.Float64("g", 2*math.Pi*0.5, "exchange coupling (rad/us; default 0.5 MHz)")
	t1 := fs.Float64("t1", 40.0, "T1 decay time (us; 0 disables)")
	tmax := fs.Float64("tmax", 2.0, "max pulse length (us)")
	dmax := fs.Float64("dmax", 2*math.Pi*1.5, "max |detuning| (rad/us; default 1.5 MHz)")
	csv := fs.Bool("csv", false, "emit CSV instead of the ASCII map")
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments %q (chevron takes flags only)", fs.Args())
	}
	if *g <= 0 {
		return cli.Usagef("-g must be positive, got %v", *g)
	}
	if *tmax <= 0 {
		return cli.Usagef("-tmax must be positive, got %v", *tmax)
	}
	if *dmax <= 0 {
		return cli.Usagef("-dmax must be positive, got %v", *dmax)
	}

	m := dynamics.ExchangeModel{G: *g, T1: *t1}
	ch, err := dynamics.ChevronMap(m, *tmax, 48, *dmax, 33)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Fprintln(stdout, "time_us,detuning_rad_us,transfer_prob")
		for i, t := range ch.Times {
			for j, d := range ch.Detunings {
				fmt.Fprintf(stdout, "%.5f,%.5f,%.6f\n", t, d, ch.TransferB[i][j])
			}
		}
		return nil
	}
	shades := []rune(" .:-=+*#%@")
	fmt.Fprintf(stdout, "Driven exchange chevron: g=%.3f rad/us, T1=%.1f us\n", *g, *t1)
	fmt.Fprintf(stdout, "x: detuning %.2f..%.2f rad/us; y: pulse length 0..%.2f us (top to bottom)\n\n",
		-*dmax, *dmax, *tmax)
	for i := range ch.Times {
		row := make([]rune, len(ch.Detunings))
		for j := range ch.Detunings {
			p := ch.TransferB[i][j]
			idx := int(p * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			row[j] = shades[idx]
		}
		fmt.Fprintf(stdout, "%5.2f |%s|\n", ch.Times[i], string(row))
	}
	fmt.Fprintln(stdout, "\n(resonant column oscillates fully; detuned columns are faster and shallower — paper Fig. 6)")
	return nil
}
