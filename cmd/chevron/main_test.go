package main

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cli"
)

func runT(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb strings.Builder
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func wantUsageError(t *testing.T, err error, fragment string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected usage error containing %q, got nil", fragment)
	}
	if !errors.As(err, new(cli.UsageError)) {
		t.Fatalf("expected usage error, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestASCIIMapByDefault(t *testing.T) {
	out, _, err := runT(t)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Driven exchange chevron") {
		t.Errorf("missing header: %q", out)
	}
	// 48 time rows, each framed |...| with 33 detuning columns.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 && strings.HasSuffix(line, "|") {
			rows++
			if w := len([]rune(line)) - i - 2; w != 33 {
				t.Errorf("row has %d detuning columns, want 33: %q", w, line)
			}
		}
	}
	if rows != 48 {
		t.Errorf("map has %d rows, want 48", rows)
	}
}

func TestCSVGrid(t *testing.T) {
	out, _, err := runT(t, "-csv", "-t1", "0")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "time_us,detuning_rad_us,transfer_prob" {
		t.Fatalf("bad CSV header %q", lines[0])
	}
	if got, want := len(lines)-1, 48*33; got != want {
		t.Errorf("CSV has %d data rows, want %d", got, want)
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != 2 {
			t.Fatalf("malformed CSV row %q", line)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	_, _, err := runT(t, "extra")
	wantUsageError(t, err, "unexpected arguments")
	_, _, err = runT(t, "-g", "0")
	wantUsageError(t, err, "-g must be positive")
	_, _, err = runT(t, "-tmax", "-1")
	wantUsageError(t, err, "-tmax must be positive")
	_, _, err = runT(t, "-dmax", "0")
	wantUsageError(t, err, "-dmax must be positive")
	_, _, err = runT(t, "-no-such-flag")
	if err == nil || !cli.IsParseError(err) {
		t.Fatalf("expected parse error, got %v", err)
	}
}
