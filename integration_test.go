package repro

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestIntegrationFullPipelineSemantics drives the public API end to end:
// workload → dense layout → stochastic routing → exact CX translation →
// statevector simulation, and checks the physical machine computes the same
// state as the logical circuit (up to the final layout permutation).
func TestIntegrationFullPipelineSemantics(t *testing.T) {
	c := QFT(6, true)
	g := Corral12()
	layout, err := DenseLayout(g, c)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := StochasticSwap(g, c, layout, rand.New(rand.NewSource(55)), 8)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := TranslateExactCX(routed.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	logical, err := RunCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	physical, err := RunCircuit(exact)
	if err != nil {
		t.Fatal(err)
	}
	// Embed the logical state at the final layout's positions.
	expected, err := NewState(g.N())
	if err != nil {
		t.Fatal(err)
	}
	expected.Amp[0] = 0
	for idx, amp := range logical.Amp {
		if amp == 0 {
			continue
		}
		phys := 0
		for q := 0; q < logical.N; q++ {
			if (idx>>(logical.N-1-q))&1 == 1 {
				phys |= 1 << (g.N() - 1 - routed.FinalLayout[q])
			}
		}
		expected.Amp[phys] = amp
	}
	ip, err := expected.Inner(physical)
	if err != nil {
		t.Fatal(err)
	}
	if f := cmplx.Abs(ip); math.Abs(f-1) > 1e-6 {
		t.Fatalf("physical/logical overlap %g, want 1", f)
	}
}

// TestIntegrationCodesignOrderingAcrossWorkloads verifies the paper's core
// claim across every workload at 16 qubits: the best SNAIL machine beats
// Heavy-Hex+CNOT on pulse duration.
func TestIntegrationCodesignOrderingAcrossWorkloads(t *testing.T) {
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(77))
	for _, name := range WorkloadNames() {
		c, err := GenerateWorkload(name, 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		hh, err := HeavyHex20CX().Evaluate(c, opt)
		if err != nil {
			t.Fatal(err)
		}
		bestSNAIL := math.Inf(1)
		for _, m := range []Machine{
			Tree20SqrtISwap(), TreeRR20SqrtISwap(), Corral11SqrtISwap(), Corral12SqrtISwap(),
		} {
			met, err := m.Evaluate(c, opt)
			if err != nil {
				t.Fatal(err)
			}
			if met.PulseDuration < bestSNAIL {
				bestSNAIL = met.PulseDuration
			}
		}
		if bestSNAIL >= hh.PulseDuration {
			t.Errorf("%s: best SNAIL duration %g not better than Heavy-Hex %g",
				name, bestSNAIL, hh.PulseDuration)
		}
	}
}

// TestIntegrationHeteroExtension exercises the §7 heterogeneous-basis
// translation through the facade on a routed circuit.
func TestIntegrationHeteroExtension(t *testing.T) {
	m := Tree20SqrtISwap()
	c := QFT(10, true)
	tr, err := m.Transpile(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	het, err := TranslateHetero(tr.Routed)
	if err != nil {
		t.Fatal(err)
	}
	dHet := HeteroPulseDuration(het)
	if dHet <= 0 || dHet > tr.Metrics.PulseDuration+1e-9 {
		t.Fatalf("hetero duration %g vs homogeneous %g", dHet, tr.Metrics.PulseDuration)
	}
}

// TestIntegrationCorralScalingFacade runs the §7 scaling study through the
// facade.
func TestIntegrationCorralScalingFacade(t *testing.T) {
	cfg := QuickExperimentConfig()
	cfg.Parallelism = 1
	rows, err := CorralScaling([]int{6, 8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Stats.Qubits != 16 {
		t.Fatalf("unexpected scaling rows: %+v", rows)
	}
}
