// Package repro is a from-scratch Go reproduction of "Co-Designed
// Architectures for Modular Superconducting Quantum Computers" (McKinney,
// Xia, Zhou, Lu, Hatridge, Jones — HPCA 2023, arXiv:2205.04387).
//
// It provides, as a library:
//
//   - the co-design core: machines as (coupling topology, native basis gate)
//     pairs and the full evaluation pipeline of the paper's Fig. 10
//     (dense placement → stochastic SWAP routing → KAK basis translation →
//     SWAP/2Q/pulse-duration metrics);
//   - every topology of Tables 1–2: Square/Hex/Heavy-Hex lattices,
//     Lattice+AltDiagonals, Hypercube (incl. the Harper-trimmed 84-qubit
//     cube), and the SNAIL-enabled 4-ary Tree, Round-Robin Tree, and
//     Corral rings;
//   - the Cartan/Weyl machinery: canonical coordinates, full KAK
//     factorization, per-basis gate-count rules (CNOT, √iSWAP, SYC, iSWAP),
//     and exact minimal-CNOT circuit synthesis;
//   - the six scalable NISQ workloads (QuantumVolume, QFT, QAOA-Vanilla,
//     TIM Hamiltonian simulation, CDKM adder, GHZ);
//   - a statevector simulator for semantic verification;
//   - the NuOp-style numerical decomposition engine behind the n√iSWAP
//     pulse-duration sensitivity study (Fig. 15) with the Eq. 12–13
//     decoherence/approximation fidelity model;
//   - the SNAIL hardware model (module capacity limits, parametric
//     frequency allocation, neighborhood-parallel gate scheduling) and the
//     driven-exchange chevron physics of Fig. 6;
//   - experiment harnesses that regenerate every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	c := repro.GHZ(12)
//	machine := repro.Tree20SqrtISwap()
//	metrics, err := machine.Evaluate(c, repro.DefaultOptions())
//
// See the examples/ directory and the cmd/ tools (topostat, qcbench,
// fidsweep, chevron) for complete programs.
package repro

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dynamics"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/noise"
	"repro/internal/par"
	"repro/internal/qasm"
	"repro/internal/sim"
	"repro/internal/snail"
	"repro/internal/topology"
	"repro/internal/transpile"
	"repro/internal/weyl"
	"repro/internal/workloads"
)

// ---- Core co-design types ----

// Machine is a co-designed quantum computer (topology + native basis).
type Machine = core.Machine

// Metrics is the paper's four-dataset measurement of a transpiled circuit.
type Metrics = core.Metrics

// Options configures an evaluation (router, seed, trials).
type Options = core.Options

// Transpiled bundles the layout, routed, and translated artifacts.
type Transpiled = core.Transpiled

// MetricsCache is the content-addressed Evaluate result cache: set it on
// Options.Cache (or SweepSpec.Cache / the Headlines and CorralScaling store
// parameter) so identical evaluations — across overlapping sweeps, repeated
// figure regenerations, or concurrent cells — route once. Entries never
// need invalidation: keys are hashes of everything the result depends on.
type MetricsCache = cache.Store[core.Metrics]

// CacheStats is a snapshot of a MetricsCache's hit/miss/fill counters.
type CacheStats = cache.Stats

// NewMetricsCache builds an Evaluate result cache. maxEntries bounds the
// in-memory LRU tier (0 = default); dir, when non-empty, adds an on-disk
// JSON tier so warm results survive across processes. Options tune the
// disk tier's robustness machinery — see WithCacheRetry and friends.
func NewMetricsCache(maxEntries int, dir string, opts ...CacheOption) (*MetricsCache, error) {
	return core.NewMetricsCache(maxEntries, dir, opts...)
}

// Circuit is the gate-list IR accepted by the pipeline.
type Circuit = circuit.Circuit

// Graph is a qubit-coupling topology.
type Graph = topology.Graph

// Stats is a Table 1/2 row (qubits, diameter, avg distance, avg degree).
type Stats = topology.Stats

// Basis identifies a native two-qubit basis gate.
type Basis = weyl.Basis

// Coord is a canonical Weyl-chamber coordinate triple.
type Coord = weyl.Coord

// Matrix is a dense complex matrix (unitaries, states).
type Matrix = linalg.Matrix

// Basis gates (paper Observation 1).
const (
	BasisCX        = weyl.BasisCX
	BasisSqrtISwap = weyl.BasisSqrtISwap
	BasisSYC       = weyl.BasisSYC
	BasisISwap     = weyl.BasisISwap
)

// NewMachine builds a machine from a topology and basis.
func NewMachine(name string, g *Graph, b Basis) Machine { return core.NewMachine(name, g, b) }

// DefaultOptions returns the experiment-default pipeline options.
func DefaultOptions() Options { return core.DefaultOptions() }

// ---- Architecture registry (declarative machine specs) ----

// Arch is a declarative architecture spec: a registered topology family,
// its parameters, a native basis, and a per-gate-type timing table,
// parseable from the "family:key=value,..." grammar (see ParseArch).
type Arch = arch.Arch

// ArchFamily is one registered topology family (name, parameter keys,
// smoke spec, and graph builder).
type ArchFamily = arch.Family

// GateTiming maps gate names to relative pulse durations (iSWAP = 1.0);
// Machine.Timing and the noise model's duration charges both read it.
type GateTiming = arch.Timing

var (
	// ParseArch decodes one spec string ("corral:posts=11,basis=sqrtiswap");
	// ParseArchList decodes a ';'- or ','-separated list of them. Arch.String
	// round-trips: ParseArch(a.String()) reproduces a exactly.
	ParseArch     = arch.Parse
	ParseArchList = arch.ParseList

	// ArchFamilies lists the registered families sorted by name;
	// RegisterArchFamily adds one (duplicate names rejected).
	ArchFamilies       = arch.Families
	RegisterArchFamily = arch.Register

	// DefaultGateTiming is the paper's pulse-length normalization — the
	// single source of truth behind StandardDurations and every machine
	// built without an explicit table.
	DefaultGateTiming = arch.DefaultTiming

	// MachineFromArch realizes a parsed spec as a Machine; MachineFromSpec
	// parses and realizes in one step. MachinesFromSpecs builds a whole
	// comparison set (unique names enforced) for SweepSpec.Machines — the
	// engine behind qcbench -machines.
	MachineFromArch   = core.FromArch
	MachineFromSpec   = core.FromSpec
	MachinesFromSpecs = experiments.MachinesFromSpecs
)

// Machine catalog (paper Figs. 13–14).
var (
	HeavyHex20CX         = core.HeavyHex20CX
	SquareLattice16SYC   = core.SquareLattice16SYC
	Tree20SqrtISwap      = core.Tree20SqrtISwap
	TreeRR20SqrtISwap    = core.TreeRR20SqrtISwap
	Corral11SqrtISwap    = core.Corral11SqrtISwap
	Corral12SqrtISwap    = core.Corral12SqrtISwap
	Hypercube16SqrtISwap = core.Hypercube16SqrtISwap
	HeavyHex84CX         = core.HeavyHex84CX
	SquareLattice84SYC   = core.SquareLattice84SYC
	Tree84SqrtISwap      = core.Tree84SqrtISwap
	TreeRR84SqrtISwap    = core.TreeRR84SqrtISwap
	Hypercube84SqrtISwap = core.Hypercube84SqrtISwap
	Machines16           = core.Machines16
	Machines84           = core.Machines84
)

// ---- Topologies (Tables 1–2) ----

var (
	SquareLattice    = topology.SquareLattice
	SquareLattice16  = topology.SquareLattice16
	SquareLattice84  = topology.SquareLattice84
	HexLattice20     = topology.HexLattice20
	HexLattice84     = topology.HexLattice84
	HeavyHex20       = topology.HeavyHex20
	HeavyHex84       = topology.HeavyHex84
	LatticeAltDiag84 = topology.LatticeAltDiag84
	Hypercube        = topology.Hypercube
	Hypercube16      = topology.Hypercube16
	Hypercube84      = topology.Hypercube84
	Tree20           = topology.Tree20
	TreeRR20         = topology.TreeRR20
	Tree84           = topology.Tree84
	TreeRR84         = topology.TreeRR84
	Tree             = topology.Tree
	TreeRR           = topology.TreeRR
	MakeTree         = topology.MakeTree
	Corral11         = topology.Corral11
	Corral12         = topology.Corral12
	CorralRing       = topology.CorralRing
)

// ---- Workloads (paper §5) ----

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// Op is a single gate application in the circuit IR.
type Op = circuit.Op

// OpUnitary resolves an op to its 2x2 or 4x4 unitary.
var OpUnitary = circuit.Unitary

var (
	QuantumVolume  = workloads.QuantumVolume
	QFT            = workloads.QFT
	QAOAVanilla    = workloads.QAOAVanilla
	TIMHamiltonian = workloads.TIMHamiltonian
	Adder          = workloads.Adder
	AdderForWidth  = workloads.AdderForWidth
	GHZ            = workloads.GHZ
	WorkloadNames  = workloads.Names
)

// GenerateWorkload builds a named benchmark at the given width.
func GenerateWorkload(name string, n int, rng *rand.Rand) (*Circuit, error) {
	return workloads.Generate(name, n, rng)
}

// ---- Transpilation primitives ----

// Layout maps virtual qubits to physical vertices.
type Layout = transpile.Layout

// EdgeProfile is the per-edge SWAP pressure measured by a pilot routing
// pass; its Weights feed Graph.WeightedDistances to build the cost matrices
// behind profile-guided routing (Options.ProfileGuided, qcbench -profile).
type EdgeProfile = transpile.EdgeProfile

// EdgeWeights assigns positive routing costs to a Graph's edges.
type EdgeWeights = topology.EdgeWeights

var (
	DenseLayout      = transpile.DenseLayout
	TrivialLayout    = transpile.TrivialLayout
	StochasticSwap   = transpile.StochasticSwap
	SabreSwap        = transpile.SabreSwap
	TranslateToBasis = transpile.TranslateToBasis
	TranslateExactCX = transpile.TranslateExactCX
	PulseDuration    = transpile.PulseDuration

	// PulseDurationTable prices a circuit's critical path by a per-gate-type
	// timing table (Machine.GateDurations / DefaultGateTiming) instead of a
	// single basis-global constant.
	PulseDurationTable = transpile.PulseDurationTable

	// Cost-matrix variants of the placement and routing passes: a nil cost
	// reproduces the uniform-hop baseline exactly; a weighted matrix (from
	// EdgeProfile.Weights via Graph.WeightedDistances) steers traffic off
	// congested links.
	DenseLayoutCost      = transpile.DenseLayoutCost
	StochasticSwapCost   = transpile.StochasticSwapCost
	SabreSwapCost        = transpile.SabreSwapCost
	NewEdgeProfile       = transpile.NewEdgeProfile
	ProfileRoutedCircuit = transpile.ProfileRoutedCircuit

	// TranslateHetero is the §7 heterogeneous-basis extension: per-gate
	// choice between the SNAIL's full and half iSWAP pulses.
	TranslateHetero     = transpile.TranslateHetero
	HeteroPulseDuration = transpile.HeteroPulseDuration

	// Peephole merges adjacent 1Q gates and cancels self-inverse 2Q pairs.
	Peephole = transpile.Peephole
)

// ---- Pass pipeline (the Fig. 10 flow as composable stages) ----

// Pass is one named stage of the transpilation pipeline.
type Pass = transpile.Pass

// PassContext is the shared state a Pipeline threads through its passes.
type PassContext = transpile.PassContext

// Pipeline is an ordered sequence of passes; Machine.Pipeline builds the
// stock arrangement (layout → route → [profile-guided] → translate) and
// custom pipelines compose freely from the exported passes.
type Pipeline = transpile.Pipeline

// PassTiming is the measured wall-clock of one executed pass
// (Transpiled.Timings).
type PassTiming = transpile.PassTiming

// RouterFunc is the pluggable routing-algorithm slot of RoutePass and
// ProfileGuidedPass.
type RouterFunc = transpile.RouterFunc

// The stock passes: initial placement, SWAP routing, pressure profiling,
// cost reweighting, the profile-guided fixed-point loop, simulation-backed
// routing verification (Options.Verify), basis translation, and peephole
// clean-up.
type (
	LayoutPass        = transpile.LayoutPass
	RoutePass         = transpile.RoutePass
	ProfilePass       = transpile.ProfilePass
	ReweightPass      = transpile.ReweightPass
	NoiseReweightPass = transpile.NoiseReweightPass
	ProfileGuidedPass = transpile.ProfileGuidedPass
	VerifyPass        = transpile.VerifyPass
	TranslatePass     = transpile.TranslatePass
	PeepholePass      = transpile.PeepholePass
)

var (
	// StochasticRouter and SabreRouter adapt the in-tree routers to the
	// RouterFunc slot.
	StochasticRouter = transpile.StochasticRouter
	SabreRouter      = transpile.SabreRouter
)

// ---- Weyl / KAK ----

// KAKDecomposition is a full Cartan factorization of a 2Q unitary.
type KAKDecomposition = weyl.Decomposition

// CXSynthesis is an exact minimal-CNOT circuit for a 2Q unitary.
type CXSynthesis = weyl.Synthesis

var (
	WeylCoordinates   = weyl.Coordinates
	KAK               = weyl.KAK
	SynthesizeCX      = weyl.SynthesizeCX
	LocallyEquivalent = weyl.LocallyEquivalent
	MakhlinInvariants = weyl.MakhlinInvariants
)

// ---- Simulation and noise ----

// State is a dense statevector.
type State = sim.State

// SimProgram is a compiled, fusion-scheduled circuit: ScheduleCircuit
// once, run it on many states with State.RunProgram (State.Run schedules
// internally; State.RunUnfused is the op-by-op debugging path).
type SimProgram = sim.Program

// ScheduleCircuit builds the gate-fusion schedule of a circuit: maximal 1Q
// runs collapse to single 2×2 sweeps, adjacent diagonals merge into phase
// sweeps, and 1Q runs absorb into neighboring generic 4×4 gates.
var ScheduleCircuit = sim.Schedule

// NoiseModel is a gate-attached Pauli/depolarizing error model covering the
// paper's two §3.1 error regimes (per-gate control error, duration-
// proportional decoherence).
type NoiseModel = noise.Model

// NoiseProfile is the declarative per-architecture noise description the
// spec grammar's e2q=/tdec=/e2q-<a>-<b>= keys parse into; Machine.Noise and
// Options.Noise carry it, and NoiseModelFromProfile turns it into a
// NoiseModel charged with a machine's timing table.
type NoiseProfile = arch.NoiseProfile

// FidelityEstimator predicts circuit fidelity under a NoiseModel: the
// closed-form CountEstimator or the trajectory-sampling
// MonteCarloEstimator (Options.Fidelity picks one inside the evaluation
// pipeline; custom pipelines can call either directly).
type FidelityEstimator = noise.Estimator

// CountEstimator and MonteCarloEstimator are the two stock fidelity
// estimators behind FidelityCount and FidelityMonteCarlo.
type (
	CountEstimator      = noise.CountEstimator
	MonteCarloEstimator = noise.MonteCarloEstimator
)

// FidelityModel selects the evaluation pipeline's fidelity estimator
// (Options.Fidelity); NoiseRouteMode selects error-weighted routing
// (Options.NoiseRoute).
type (
	FidelityModel  = core.FidelityModel
	NoiseRouteMode = core.NoiseRouteMode
)

// The noise-aware evaluation modes: fidelity estimation off / closed-form /
// Monte-Carlo, and noise routing off / purely error-weighted / error
// weights blended into measured SWAP pressure.
const (
	FidelityOff        = core.FidelityOff
	FidelityCount      = core.FidelityCount
	FidelityMonteCarlo = core.FidelityMonteCarlo

	NoiseRouteOff   = core.NoiseRouteOff
	NoiseRoutePure  = core.NoiseRoutePure
	NoiseRouteBlend = core.NoiseRouteBlend
)

// DefaultNoiseShots is the Monte-Carlo trajectory count used when
// Options.NoiseShots is zero.
const DefaultNoiseShots = noise.DefaultShots

var (
	NewState      = sim.NewState
	NewBasisState = sim.NewBasisState
	RunCircuit    = sim.RunCircuit

	MonteCarloFidelity = noise.MonteCarloFidelity
	StandardDurations  = noise.StandardDurations

	// ParseNoise parses a standalone noise-profile string in the spec
	// grammar ("e2q=0.002,tdec=0.001,e2q-0-1=0.05") — the qcbench -noise
	// flag's parser.
	ParseNoise = arch.ParseNoise
	// NoiseModelFromProfile builds the gate-attached NoiseModel a profile
	// describes, charging decoherence with the given timing table
	// (typically Machine.GateDurations()).
	NoiseModelFromProfile = noise.FromProfile
	// ValidateForSim rejects circuits the trajectory simulators cannot
	// run (bad arities, repeated or out-of-range qubits, too wide after
	// compaction) with descriptive errors.
	ValidateForSim = noise.ValidateForSim
)

// ---- OpenQASM 2.0 interop ----

// QASMOptions controls export (ExpandNonStandard synthesizes non-qelib
// gates into exact u3+cx sequences).
type QASMOptions = qasm.Options

var (
	ExportQASM = qasm.Export
	ImportQASM = qasm.Import
)

// ---- Numerical decomposition (Fig. 15 engine) ----

// DecompResult is an optimized n√iSWAP template.
type DecompResult = decomp.Result

// DecompConfig tunes the template optimizer.
type DecompConfig = decomp.Config

var (
	Decompose     = decomp.Decompose
	BestTemplate  = decomp.BestTemplate
	HSFidelity    = decomp.HSFidelity
	BaseFidelity  = decomp.BaseFidelity
	TotalFidelity = decomp.TotalFidelity

	// MinDurationExact finds the shortest-duration exact n√iSWAP template
	// for a unitary — discrete pulse sequences approaching the continuous
	// interaction-cost bound (§6.3 made operational).
	MinDurationExact = decomp.MinDurationExact
)

// ---- SNAIL hardware model ----

// SNAILHardware is a modular machine description (SNAIL scopes over qubits).
type SNAILHardware = snail.Hardware

// SNAILModule is one SNAIL and its attached qubits.
type SNAILModule = snail.Module

var (
	BuildSNAIL     = snail.Build
	TreeHardware   = snail.TreeHardware
	Tree84Hardware = snail.Tree84Hardware
	CorralHardware = snail.CorralHardware
)

// ---- Driven-exchange physics (Fig. 6) ----

// ExchangeModel is the parametric qubit-qubit exchange model.
type ExchangeModel = dynamics.ExchangeModel

// ChevronData is the sampled transfer-probability map.
type ChevronData = dynamics.Chevron

// ChevronMap samples the Fig. 6 chevron pattern.
var ChevronMap = dynamics.ChevronMap

// ---- Experiments (tables, figures, headlines) ----

// Series is one curve of a reproduced figure.
type Series = experiments.Series

// SweepSpec describes a figure's sweep.
type SweepSpec = experiments.SweepSpec

// ExperimentConfig is the unified experiment configuration threaded through
// every harness (SweepSpec, Headlines, CorralScaling, RunFig15Config) and
// both CLIs: core.Options (seed, trials, router, parallelism, cache,
// profile-guided mode and iterations) plus the Quick size switch. It
// replaces the old positional (quick, parallelism, store, profileGuided)
// parameter lists.
type ExperimentConfig = experiments.Config

var (
	// DefaultExperimentConfig is the paper-default configuration (full
	// sizes, seed 2022, mode-derived trial count).
	DefaultExperimentConfig = experiments.DefaultConfig
	// QuickExperimentConfig is DefaultExperimentConfig at test/benchmark
	// sizes.
	QuickExperimentConfig = experiments.QuickConfig
)

// Fig15Result is the pulse-duration sensitivity study output.
type Fig15Result = experiments.Fig15Result

// HeadlineRatios summarizes the paper's §1/§6 comparison claims.
type HeadlineRatios = experiments.Headline

var (
	Table1    = experiments.Table1
	Table2    = experiments.Table2
	Fig4Spec  = experiments.Fig4Spec
	Fig11Spec = experiments.Fig11Spec
	Fig12Spec = experiments.Fig12Spec
	Fig13Spec = experiments.Fig13Spec
	Fig14Spec = experiments.Fig14Spec
	RunFig15  = experiments.RunFig15
	// RunFig15Parallel bounds the decomposition worker pool explicitly
	// (RunFig15 = auto); output is byte-identical at every setting.
	RunFig15Parallel = experiments.RunFig15Parallel
	// RunFig15Config drives the study from an ExperimentConfig (seed +
	// parallelism).
	RunFig15Config = experiments.RunFig15Config
	Headlines      = experiments.Headlines

	// CorralScaling grows the fence-post ring beyond the paper's 8 posts
	// (the §7 scaling question) and measures structure + routed QV cost.
	CorralScaling = experiments.CorralScaling
	SeriesCSV     = experiments.SeriesCSV

	// HeadlinesContext and CorralScalingContext are the cancellable
	// variants: the context (tightened by ExperimentConfig.Deadline)
	// threads into every evaluation's cooperative polls without ever
	// changing what a completed study reports.
	HeadlinesContext     = experiments.HeadlinesContext
	CorralScalingContext = experiments.CorralScalingContext
)

// ---- Robustness (fault isolation, deadlines, degradation, crash-resume) ----

// PanicError is what a panicking parallel task is recovered into: the
// sweep worker pool and the cache's singleflight both isolate panics so
// one faulty cell fails as an ordinary error instead of killing the
// process. It carries the task index, panic value, and captured stack.
type PanicError = par.PanicError

// CellError locates one failed cell of a tolerant sweep (workload,
// machine, size, cause).
type CellError = experiments.CellError

// CellErrors is the aggregate failure of a tolerant sweep
// (ExperimentConfig.Tolerant): one entry per failed cell, returned
// alongside the partial Series, unwrapping to its causes for errors.Is.
type CellErrors = experiments.CellErrors

// CellHook runs immediately before each sweep cell's evaluation
// (SweepSpec.CellHook); returning an error fails that cell. It is the
// seam deterministic fault-injection harnesses plug into.
type CellHook = experiments.CellHook

// SweepJournal is the crash-resume log of a sweep (SweepSpec.Journal):
// every completed cell is appended atomically, and a restarted sweep
// replays recorded cells for byte-identical output while recomputing only
// what is missing.
type SweepJournal = experiments.Journal

// OpenSweepJournal opens (or creates) a sweep journal, tolerating the
// torn final line a crash mid-append leaves behind.
var OpenSweepJournal = experiments.OpenJournal

// CacheFS is the filesystem seam of the cache's disk tier: tests and
// chaos harnesses substitute failing or corrupting implementations for
// the real disk (see internal/faultinject).
type CacheFS = cache.FS

// CacheOption tunes a MetricsCache's disk tier.
type CacheOption = cache.Option

var (
	// WithCacheRetry bounds transient-fault retries per disk operation
	// (with jittered exponential backoff); WithCacheErrorBudget sets how
	// many consecutive disk failures quarantine the tier (the store then
	// degrades to memory-only instead of failing evaluations, and a
	// periodic probe — WithCacheProbeInterval — re-enables a healed
	// disk); WithCacheFS substitutes the disk tier's filesystem.
	WithCacheRetry         = cache.WithRetry
	WithCacheErrorBudget   = cache.WithErrorBudget
	WithCacheProbeInterval = cache.WithProbeInterval
	WithCacheFS            = cache.WithFS
)
